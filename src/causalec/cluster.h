// Cluster: the convenience assembly of a full CausalEC deployment on the
// discrete-event simulator -- servers, transports, garbage-collection
// timers, and client sessions. This is the primary public entry point:
//
//   auto cluster = causalec::Cluster::Builder()
//                      .code(erasure::make_paper_5_3(64))
//                      .latency_ms(10)
//                      .build();
//   auto& alice = cluster->make_client(/*at_server=*/0);
//   alice.write(0, value);
//   alice.read(0, [](const auto& v, const auto& tag, const auto&) { ... });
//   cluster->run_for(sim::kSecond);
#pragma once

#include <memory>
#include <vector>

#include "causalec/client.h"
#include "causalec/config.h"
#include "causalec/server.h"
#include "erasure/code.h"
#include "obs/sampler.h"
#include "persist/backend.h"
#include "persist/journal.h"
#include "sim/latency.h"
#include "sim/simulation.h"

namespace causalec {

struct ClusterConfig {
  ServerConfig server;
  /// Garbage_Collection firing period per server (Sec. 4.2's T_gc).
  SimTime gc_period = 50 * sim::kMillisecond;
  /// Stagger GC across servers so they do not fire in lockstep.
  SimTime gc_stagger = sim::kMillisecond;
  /// Per-firing GC jitter (uniform in [-gc_jitter, +gc_jitter], seeded from
  /// the simulation Rng). The chaos harness uses this to explore GC /
  /// re-encode interleavings; 0 keeps firings strictly periodic.
  SimTime gc_jitter = 0;
  /// When non-empty (N x N), row s becomes server s's proximity vector for
  /// ReadFanout::kNearestRecoverySet (e.g. the RTT matrix).
  std::vector<std::vector<double>> proximity_matrix;
  std::uint64_t seed = 1;

  /// Observability sinks, shared by the simulator (message events, net.*
  /// counters) and every server (spans, server.* metrics). Copied into
  /// each ServerConfig; a value set in `server.obs` directly is overridden
  /// when these are non-null.
  obs::ObsHooks obs;

  /// When set, every server's StorageStats is sampled into this series
  /// every storage_sample_period of simulated time (the Sec. 4.2 transient
  /// storage curve). Use storage_series_columns() for the column layout.
  obs::TimeSeries* storage_series = nullptr;
  SimTime storage_sample_period = 50 * sim::kMillisecond;

  /// When set (not owned; must outlive the cluster), every server journals
  /// its state into this backend -- accepted writes and dispatched messages
  /// as WAL records, full images every snapshot_period -- which is what
  /// makes recover_server() possible. Null keeps servers crash-stop.
  persist::Backend* persistence = nullptr;
  SimTime snapshot_period = 200 * sim::kMillisecond;
};

class Cluster {
 public:
  Cluster(erasure::CodePtr code, std::unique_ptr<sim::LatencyModel> latency,
          ClusterConfig config = {});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  const erasure::Code& code() const { return *code_; }
  std::size_t num_servers() const { return servers_.size(); }

  sim::Simulation& sim() { return *sim_; }
  Server& server(NodeId id);
  const Server& server(NodeId id) const;

  /// Creates a client attached to the given server; owned by the cluster.
  Client& make_client(NodeId at_server);

  /// Crash a server (it halts; Sec. 2.1).
  void halt_server(NodeId id);

  /// Crash-recover a halted server from its durable state (requires
  /// ClusterConfig::persistence): un-halt the simulated node, reload
  /// snapshot + WAL with the transport muted, checkpoint the replayed
  /// state, then start the anti-entropy rejoin round (DESIGN.md §9).
  void recover_server(NodeId id);

  /// Transient network partition: every channel between `side` and its
  /// complement (both directions) holds messages back until `heal_at`.
  /// Messages sent during the partition are delivered after it heals
  /// (channels stay reliable and FIFO -- the paper's asynchronous model
  /// allows arbitrary finite delays). Call at the partition start time.
  void partition(const std::vector<NodeId>& side, SimTime heal_at);

  /// Advance simulated time; GC timers fire along the way.
  void run_for(SimTime duration);

  /// Drain every outstanding event, firing GC rounds until the protocol
  /// quiesces (no event left, incl. enough GC to converge storage). GC
  /// timers are re-armed afterwards.
  void settle(std::size_t gc_rounds = 8);

  /// Total payload+metadata entries across servers (Theorem 4.5 checks).
  bool storage_converged() const;

  /// Column names of the rows recorded into ClusterConfig::storage_series.
  static std::vector<std::string> storage_series_columns();

 private:
  class SimTransport;

  void arm_gc_timers();
  void disarm_gc_timers();
  void arm_storage_sampler();
  void disarm_storage_sampler();
  void sample_storage();
  void arm_snapshot_timers();
  void disarm_snapshot_timers();

  erasure::CodePtr code_;
  ClusterConfig config_;
  std::unique_ptr<sim::Simulation> sim_;
  std::vector<std::unique_ptr<SimTransport>> transports_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::vector<std::unique_ptr<persist::Journal>> journals_;
  std::vector<std::uint64_t> gc_timer_ids_;
  std::vector<std::uint64_t> snapshot_timer_ids_;
  std::uint64_t storage_sampler_id_ = 0;
  ClientId next_client_id_ = 1;
};

}  // namespace causalec
