// A client session (Sec. 2.1): attached to one server for its lifetime,
// at most one pending invocation at a time (the well-formedness condition).
#pragma once

#include <functional>
#include <utility>

#include "causalec/server.h"
#include "common/types.h"

namespace causalec {

class Client {
 public:
  /// Fired on read completion: (value, tag of returned write, response ts).
  using ReadDone = ReadCallback;

  Client(ClientId id, Server* server) : id_(id), server_(server) {
    CEC_CHECK(server_ != nullptr);
    CEC_CHECK(id_ != kLocalhost);
  }

  ClientId id() const { return id_; }
  NodeId server_id() const { return server_->id(); }

  /// Local write; returns the write's tag (synchronous, Property (I)).
  Tag write(ObjectId object, erasure::Value value) {
    CEC_CHECK_MSG(!busy_, "client " << id_ << ": operation already pending");
    const OpId opid = next_opid();
    return server_->client_write(id_, opid, object, std::move(value));
  }

  /// Read; `done` fires exactly once (possibly inline for local reads).
  void read(ObjectId object, ReadDone done) {
    CEC_CHECK_MSG(!busy_, "client " << id_ << ": operation already pending");
    busy_ = true;
    const OpId opid = next_opid();
    server_->client_read(
        id_, opid, object,
        [this, done = std::move(done)](const erasure::Value& value,
                                       const Tag& tag,
                                       const VectorClock& ts) {
          busy_ = false;
          done(value, tag, ts);
        });
  }

  bool busy() const { return busy_; }

 private:
  OpId next_opid() {
    // Globally unique: client ids are unique and the high (internal) bit
    // is never set for client ids below 2^39.
    return (id_ << 24) | op_counter_++;
  }

  ClientId id_;
  Server* server_;
  std::uint64_t op_counter_ = 0;
  bool busy_ = false;
};

}  // namespace causalec
