// The apply queue InQueue (Sec. 3): pending (origin, object, value, tag)
// tuples ordered by timestamp, smaller timestamps toward the head; a new
// tuple is placed after all existing items whose timestamp is smaller than
// or incomparable with its own.
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "causalec/tag.h"
#include "erasure/value.h"

namespace causalec {

class InQueue {
 public:
  struct Entry {
    NodeId origin;
    ObjectId object;
    erasure::Value value;
    Tag tag;
  };

  /// Insert per the paper's placement rule: append, then move toward the
  /// head past any entry whose timestamp is strictly greater (comparable)
  /// in the vector-clock partial order.
  void insert(Entry entry) {
    const Tag tag = entry.tag;
    entries_.push_back(std::move(entry));
    std::size_t i = entries_.size() - 1;
    while (i > 0 && tag.ts.lt(entries_[i - 1].tag.ts)) {
      std::swap(entries_[i], entries_[i - 1]);
      --i;
    }
  }

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  const Entry& head() const {
    CEC_DCHECK(!entries_.empty());
    return entries_.front();
  }

  Entry pop_head() {
    CEC_DCHECK(!entries_.empty());
    Entry e = std::move(entries_.front());
    entries_.pop_front();
    return e;
  }

  /// Remove and return the first entry (scanning from the head) that
  /// satisfies the apply predicate; nullopt when none does.
  ///
  /// Scanning past a blocked head is required for liveness: with head-only
  /// processing, an entry whose dependency was inserted *behind* an entry
  /// with an incomparable timestamp can block the queue forever (DESIGN.md
  /// note 9). The predicate itself enforces causal delivery, so applying
  /// out of queue order is safe.
  template <typename Pred>
  std::optional<Entry> pop_first_applicable(Pred&& applicable) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (applicable(*it)) {
        Entry e = std::move(*it);
        entries_.erase(it);
        return e;
      }
    }
    return std::nullopt;
  }

  bool contains(const Tag& tag) const {
    for (const auto& e : entries_) {
      if (e.tag == tag) return true;
    }
    return false;
  }

  /// Remove and return every entry matching the predicate, preserving queue
  /// order. Used by the rejoin merge: entries a freshly merged vector clock
  /// already covers can never satisfy the apply predicate again and must be
  /// absorbed straight into the history list.
  template <typename Pred>
  std::vector<Entry> extract_if(Pred&& pred) {
    std::vector<Entry> out;
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (pred(*it)) {
        out.push_back(std::move(*it));
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
    return out;
  }

  std::size_t payload_bytes() const {
    std::size_t n = 0;
    for (const auto& e : entries_) n += e.value.size();
    return n;
  }

  const std::deque<Entry>& entries() const { return entries_; }

 private:
  std::deque<Entry> entries_;
};

}  // namespace causalec
