#include "causalec/server.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <set>
#include <sstream>

#include "causalec/codec.h"
#include "common/logging.h"

namespace causalec {

namespace {

/// Internal-read opids live in their own half of the id space so they can
/// never collide with client-generated opids.
constexpr OpId kInternalOpidBase = OpId{1} << 63;

/// Opid range skipped per restore so post-restart internal reads can never
/// collide with pre-crash reads whose responses are still in flight.
constexpr std::uint64_t kOpidRecoverySkip = std::uint64_t{1} << 20;

/// Wall-clock nanoseconds for the per-phase latency histograms. Phase
/// durations are real elapsed time on both runtimes (simulated time never
/// advances inside an activation, so it cannot decompose one).
std::int64_t wall_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Small stable code for the flight recorder's msg_recv events; matches the
/// codec's MsgType numbering.
std::uint32_t msg_type_code(const sim::Message& m) {
  const char* n = m.type_name();
  if (std::strcmp(n, "app") == 0) return 1;
  if (std::strcmp(n, "del") == 0) return 2;
  if (std::strcmp(n, "val_inq") == 0) return 3;
  if (std::strcmp(n, "val_resp") == 0) return 4;
  if (std::strcmp(n, "val_resp_encoded") == 0) return 5;
  if (std::strcmp(n, "recover_digest") == 0) return 6;
  if (std::strcmp(n, "recover_digest_reply") == 0) return 7;
  if (std::strcmp(n, "recover_pull") == 0) return 8;
  if (std::strcmp(n, "recover_push") == 0) return 9;
  return 0;
}

std::string tag_string(const Tag& tag) {
  std::ostringstream out;
  out << tag;
  return out.str();
}

}  // namespace

Server::Server(NodeId id, erasure::CodePtr code, ServerConfig config,
               Transport* transport)
    : id_(id),
      code_(std::move(code)),
      config_(std::move(config)),
      transport_(transport),
      wire_(WireModel::make(config_, code_->num_servers(),
                            code_->num_objects())),
      n_(code_->num_servers()),
      k_(code_->num_objects()),
      vc_(n_),
      m_val_(code_->zero_symbol(id)),
      m_tags_(zero_tag_vector(k_, n_)),
      tmax_(zero_tag_vector(k_, n_)),
      last_del_broadcast_all_(zero_tag_vector(k_, n_)),
      flight_(config_.flight_recorder_capacity) {
  CEC_CHECK(transport_ != nullptr);
  CEC_CHECK(id_ < n_);
  tracer_ = config_.obs.tracer;
  obs_enabled_ = config_.obs.any();
  flight_on_ = config_.flight_recorder;
  if (obs::MetricsRegistry* metrics = config_.obs.metrics) {
    m_writes_ = &metrics->counter("server.writes");
    m_reads_ = &metrics->counter("server.reads");
    m_reads_remote_ = &metrics->counter("server.reads_remote");
    m_reencodes_ = &metrics->counter("server.reencodes");
    m_gc_collected_ = &metrics->counter("server.gc_collected");
    m_read_latency_ = &metrics->histogram("server.read_latency_ns");
    m_write_bytes_ = &metrics->histogram("server.write_bytes");
    m_recoveries_ = &metrics->counter("server.recoveries");
    m_catchup_bytes_ = &metrics->counter("server.catchup_bytes");
    m_repair_bytes_ = &metrics->counter("server.repair_bytes");
    m_repair_plan_hits_ = &metrics->counter("server.repair_plan_hits");
    m_degraded_reads_ = &metrics->counter("server.degraded_reads");
    m_recovery_duration_ = &metrics->histogram("server.recovery_duration_ns");
    m_phase_apply_ = &metrics->histogram("phase.apply_ns");
    m_phase_encode_ = &metrics->histogram("phase.encode_ns");
    m_phase_persist_ = &metrics->histogram("phase.persist_ns");
  }
  for (NodeId j = 0; j < n_; ++j) {
    if (j != id_) others_.push_back(j);
  }
  lists_.reserve(k_);
  dels_.reserve(k_);
  containing_.resize(k_);
  for (std::size_t x = 0; x < k_; ++x) {
    lists_.emplace_back(n_, code_->value_bytes());
    dels_.emplace_back(n_);
    for (NodeId j = 0; j < n_; ++j) {
      if (code_->contains(j, static_cast<ObjectId>(x))) {
        containing_[x].push_back(j);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Cold observability emitters (declared noinline in server.h; see there).
// ---------------------------------------------------------------------------

void Server::obs_write_done(ObjectId object, ClientId client,
                            std::size_t bytes, SimTime t0,
                            std::uint64_t trace_id) {
  if (m_writes_ != nullptr) {
    m_writes_->inc();
    m_write_bytes_->observe(bytes);
  }
  if (tracer_ != nullptr) {
    tracer_->complete("write", id_, t0, transport_->now() - t0,
                      {{"object", std::uint64_t{object}},
                       {"client", std::uint64_t{client}},
                       {"trace", trace_id}});
  }
}

void Server::obs_read_done(ObjectId object, SimTime t0, const char* path,
                           const Tag& tag) {
  if (tracer_ != nullptr) {
    tracer_->complete("read", id_, t0, transport_->now() - t0,
                      {{"object", std::uint64_t{object}},
                       {"path", path},
                       {"dep_tag", tag_string(tag)}});
  }
  if (m_read_latency_ != nullptr) {
    m_read_latency_->observe(
        static_cast<std::uint64_t>(transport_->now() - t0));
  }
}

std::uint64_t Server::obs_read_remote_begin(ObjectId object, OpId opid,
                                            SimTime t0) {
  if (m_reads_remote_ != nullptr) m_reads_remote_->inc();
  if (tracer_ == nullptr) return 0;
  return tracer_->begin_async(
      "read.remote", id_, t0,
      {{"object", std::uint64_t{object}}, {"opid", std::uint64_t{opid}}});
}

std::uint64_t Server::obs_read_internal_begin(ObjectId object, SimTime t0) {
  if (tracer_ == nullptr) return 0;
  return tracer_->begin_async("read.internal", id_, t0,
                              {{"object", std::uint64_t{object}}});
}

void Server::obs_reencode(ObjectId object) {
  if (m_reencodes_ != nullptr) m_reencodes_->inc();
  if (tracer_ != nullptr) {
    tracer_->instant("reencode", id_, transport_->now(),
                     {{"object", std::uint64_t{object}}});
  }
}

// ---------------------------------------------------------------------------
// Client operations (Algorithm 1).
// ---------------------------------------------------------------------------

Tag Server::client_write(ClientId client, OpId opid, ObjectId object,
                         erasure::Value value) {
  (void)opid;  // the synchronous ack needs no correlation
  CEC_CHECK(object < k_);
  CEC_CHECK(value.size() == code_->value_bytes());
  // Journal the input, not the effects: replaying the same writes in the
  // same order reproduces the same tags and multicast deterministically.
  if (journal_ != nullptr && journal_->recording()) {
    const std::int64_t pt0 = m_phase_persist_ != nullptr ? wall_ns() : 0;
    journal_->record_client_write(client, opid, object, value);
    if (m_phase_persist_ != nullptr) m_phase_persist_->observe(wall_ns() - pt0);
  }
  ++counters_.writes;
  const SimTime obs_t0 = obs_now();
  active_trace_ = tracer_ != nullptr ? tracer_->new_id() : 0;

  vc_.increment(id_);
  Tag tag(vc_, client);
  lists_[object].insert(tag, value);
  flight(obs::FlightKind::kClientWrite, object, 0, &tag);

  // Alg. 1 lines 7-9: answer every pending *external* read on this object
  // with the fresh (causally newest local) value.
  std::vector<OpId> to_complete;
  for (auto& read : reads_.all()) {
    if (!read.is_internal() && read.object == object) {
      to_complete.push_back(read.opid);
    }
  }
  for (OpId completed : to_complete) {
    if (PendingRead* read = reads_.find(completed)) {
      complete_pending_read(*read, value, tag);
      reads_.remove(completed);
    }
  }

  // Alg. 1 line 6: propagate to every other node. Every AppMessage shares
  // the one payload buffer, and serializing runtimes encode it once.
  transport_->multicast(others_, [&] {
    auto msg = std::make_unique<AppMessage>(object, value, tag, wire_);
    stamp_trace(*msg, active_trace_);
    return msg;
  });

  if (obs_enabled_) {
    obs_write_done(object, client, value.size(), obs_t0, active_trace_);
  }
  run_internal_actions();  // Encoding picks the new version up eagerly
  return tag;
}

void Server::client_read(ClientId client, OpId opid, ObjectId object,
                         ReadCallback callback) {
  CEC_CHECK(object < k_);
  CEC_CHECK(callback != nullptr);
  ++counters_.reads;
  const SimTime obs_t0 = obs_now();
  if (m_reads_ != nullptr) m_reads_->inc();
  flight(obs::FlightKind::kClientRead, object,
         static_cast<std::uint32_t>(opid));

  // Alg. 1 line 11: serve from the history list when it is at least as new
  // as the encoded version (the zero tag acts as the virtual initial entry).
  const Tag highest = lists_[object].highest_tag();
  if (highest >= m_tags_[object]) {
    ++counters_.reads_served_from_history;
    const auto value = lists_[object].lookup(highest);
    CEC_CHECK(value.has_value());
    flight(obs::FlightKind::kReadDone, object, 0, &highest);
    if (obs_enabled_) obs_read_done(object, obs_t0, "history", highest);
    callback(*value, highest, vc_);
    return;
  }

  // Alg. 1 line 13: local decode when {s} is a recovery set.
  if (code_->is_local(id_, object)) {
    ++counters_.reads_served_local_decode;
    const NodeId self[] = {id_};
    const erasure::Symbol syms[] = {m_val_};
    erasure::Value value = code_->decode(object, self, syms);
    flight(obs::FlightKind::kReadDone, object, 0, &m_tags_[object]);
    if (obs_enabled_) {
      obs_read_done(object, obs_t0, "local_decode", m_tags_[object]);
    }
    callback(value, m_tags_[object], vc_);
    return;
  }

  // Alg. 1 lines 16-18: register and inquire.
  ++counters_.reads_registered_remote;
  PendingRead read;
  read.client = client;
  read.opid = opid;
  read.object = object;
  read.requested = m_tags_;
  read.symbols.assign(n_, std::nullopt);
  read.symbols[id_] = m_val_;
  read.callback = std::move(callback);
  read.broadcast = config_.fanout == ReadFanout::kBroadcast;
  read.started_at = obs_t0;
  if (obs_enabled_) {
    read.trace_id = obs_read_remote_begin(object, opid, obs_t0);
  }
  active_trace_ = read.trace_id;
  register_read(std::move(read));
}

// ---------------------------------------------------------------------------
// Message dispatch.
// ---------------------------------------------------------------------------

void Server::on_message(NodeId from, sim::MessagePtr message) {
  dispatch_message(from, std::move(message));
  run_internal_actions();
}

void Server::dispatch_message(NodeId from, sim::MessagePtr message) {
  if (journal_ != nullptr && journal_->recording()) {
    const std::int64_t pt0 = m_phase_persist_ != nullptr ? wall_ns() : 0;
    journal_->record_message(from, serialize_message(*message));
    if (m_phase_persist_ != nullptr) m_phase_persist_->observe(wall_ns() - pt0);
  }
  // Handlers run in the trace context of the inbound message; outbound
  // sends they perform inherit it through stamp_trace(active_trace_).
  active_trace_ = message->trace.trace_id;
  flight(obs::FlightKind::kMsgRecv, from, msg_type_code(*message));
  if (auto* app = dynamic_cast<AppMessage*>(message.get())) {
    handle_app(from, *app);
  } else if (auto* del = dynamic_cast<DelMessage*>(message.get())) {
    handle_del(from, *del);
  } else if (auto* inq = dynamic_cast<ValInqMessage*>(message.get())) {
    handle_val_inq(from, *inq);
  } else if (auto* resp = dynamic_cast<ValRespMessage*>(message.get())) {
    handle_val_resp(from, *resp);
  } else if (auto* enc = dynamic_cast<ValRespEncodedMessage*>(message.get())) {
    handle_val_resp_encoded(from, *enc);
  } else if (auto* dig = dynamic_cast<RecoverDigestMessage*>(message.get())) {
    handle_recover_digest(from, *dig);
  } else if (auto* reply =
                 dynamic_cast<RecoverDigestReplyMessage*>(message.get())) {
    handle_recover_digest_reply(from, *reply);
  } else if (auto* pull = dynamic_cast<RecoverPullMessage*>(message.get())) {
    handle_recover_pull(from, *pull);
  } else if (auto* push = dynamic_cast<RecoverPushMessage*>(message.get())) {
    handle_recover_push(from, *push);
  } else {
    CEC_CHECK_MSG(false, "unknown message type " << message->type_name());
  }
}

void Server::handle_app(NodeId from, const AppMessage& msg) {
  if (recovery_epoch_ > 0) {
    // After a restore, a version can arrive twice (once from the WAL replay
    // and again from a late channel delivery or a rejoin push). A covered
    // or duplicate tag must not re-queue: the apply predicate can never
    // fire for it again, so the entry would pin the queue forever.
    if (msg.tag.ts[from] <= vc_[from]) {
      ++counters_.stale_app_dropped;
      lists_[msg.object].insert(msg.tag, msg.value);  // idempotent
      return;
    }
    if (inqueue_.contains(msg.tag)) {
      ++counters_.stale_app_dropped;
      return;
    }
  }
  inqueue_.insert(InQueue::Entry{from, msg.object, msg.value, msg.tag});
}

void Server::handle_del(NodeId from, const DelMessage& msg) {
  (void)from;
  dels_[msg.object].add(msg.origin, msg.tag);
  // Appendix G variant (ii): the leader fans forwarded dels out to
  // everyone on the origin's behalf.
  if (msg.forward && id_ == config_.del_leader) {
    std::vector<NodeId> targets;
    for (NodeId j : others_) {
      if (j != msg.origin) targets.push_back(j);
    }
    transport_->multicast(targets, [&] {
      auto fwd = std::make_unique<DelMessage>(msg.object, msg.tag, msg.origin,
                                              /*forward=*/false, wire_);
      stamp_trace(*fwd, active_trace_);
      return fwd;
    });
  }
}

void Server::handle_val_inq(NodeId from, const ValInqMessage& msg) {
  ++counters_.val_inq_handled;
  const ObjectId object = msg.object;
  const SimTime obs_t0 = obs_now();

  // Alg. 2 line 4: uncoded response when the wanted version is in our list.
  if (const auto value = lists_[object].lookup(msg.wanted[object])) {
    ++counters_.val_resp_sent;
    auto resp = std::make_unique<ValRespMessage>(msg.client, msg.opid, object,
                                                 *value, msg.wanted, wire_);
    stamp_trace(*resp, active_trace_);
    transport_->send(from, std::move(resp));
    if (tracer_ != nullptr) {
      tracer_->complete("val_inq", id_, obs_t0, transport_->now() - obs_t0,
                        {{"object", std::uint64_t{object}},
                         {"from", std::uint64_t{from}},
                         {"resp", "uncoded"}});
    }
    return;
  }

  // Alg. 2 lines 6-14: re-encode our codeword symbol toward the wanted
  // versions where the history list allows it. The "apply wanted" step runs
  // only when the "cancel current" step succeeded (DESIGN.md note 2). All
  // per-object transforms drain through one fused reencode_batch pass, so
  // each symbol row is streamed once instead of once per object. The held
  // Values keep the spans alive until the batch executes.
  erasure::Symbol resp_val = m_val_;
  TagVector resp_tags = m_tags_;
  std::vector<erasure::Value> held;
  std::vector<erasure::Code::ReencodeEntry> entries;
  for (ObjectId x : code_->support(id_)) {
    if (resp_tags[x] == msg.wanted[x]) continue;
    const auto current = lists_[x].lookup(resp_tags[x]);
    if (!current) continue;  // case (iii): leave this object's version as is
    const auto wanted_value = lists_[x].lookup(msg.wanted[x]);
    held.push_back(*current);
    const std::span<const std::uint8_t> old_span = held.back();
    if (wanted_value) {
      held.push_back(*wanted_value);
      entries.push_back({x, old_span, held.back()});
      resp_tags[x] = msg.wanted[x];
    } else {
      entries.push_back({x, old_span, {}});
      resp_tags[x] = Tag::zero(n_);
    }
  }
  code_->reencode_batch(id_, resp_val, entries);
  ++counters_.val_resp_encoded_sent;
  auto enc = std::make_unique<ValRespEncodedMessage>(
      msg.client, msg.opid, object, std::move(resp_val), std::move(resp_tags),
      msg.wanted, wire_);
  stamp_trace(*enc, active_trace_);
  transport_->send(from, std::move(enc));
  if (tracer_ != nullptr) {
    tracer_->complete("val_inq", id_, obs_t0, transport_->now() - obs_t0,
                      {{"object", std::uint64_t{object}},
                       {"from", std::uint64_t{from}},
                       {"resp", "encoded"}});
  }
}

void Server::handle_val_resp(NodeId from, const ValRespMessage& msg) {
  (void)from;
  PendingRead* read = reads_.find(msg.opid);
  if (read == nullptr) return;  // already served
  CEC_DCHECK(read->client == msg.client && read->object == msg.object);
  complete_pending_read(*read, msg.value, msg.requested[msg.object]);
  reads_.remove(msg.opid);
}

void Server::handle_val_resp_encoded(NodeId from,
                                     const ValRespEncodedMessage& msg) {
  PendingRead* read = reads_.find(msg.opid);
  if (read == nullptr) return;  // already served
  CEC_DCHECK(read->client == msg.client && read->object == msg.object);

  // Alg. 2 lines 15-27: re-encode the sender's symbol to the requested
  // versions using *our* history list. The symbol lives in the sender's
  // space W_j, so re-encoding uses the sender's coefficients (DESIGN note
  // 1). The per-object transforms are collected first and drained through
  // one fused reencode_batch pass -- and when any Error1/Error2 fires, the
  // result would be discarded anyway, so the batch is skipped entirely.
  bool error = false;
  std::vector<erasure::Value> held;
  std::vector<erasure::Code::ReencodeEntry> entries;
  for (ObjectId x : code_->support(from)) {
    if (msg.requested[x] == msg.symbol_tags[x]) continue;
    const auto current = lists_[x].lookup(msg.symbol_tags[x]);
    if (!current) {
      ++counters_.error1_events;
      CEC_CHECK_MSG(!config_.strict_error_invariants,
                    "Error1 raised at server "
                        << id_ << " for object X" << x << " from server "
                        << from << " opid " << msg.opid << " internal="
                        << (msg.client == kLocalhost) << " symbol_tag "
                        << msg.symbol_tags[x] << " requested "
                        << msg.requested[x] << " my M.tag " << m_tags_[x]
                        << " (symbol tag not in history; Lemma D.1 violated)");
      error = true;
      continue;
    }
    const auto wanted_value = lists_[x].lookup(msg.requested[x]);
    if (!wanted_value) {
      ++counters_.error2_events;
      CEC_CHECK_MSG(!config_.strict_error_invariants,
                    "Error2 raised at server "
                        << id_ << " for object X" << x
                        << " (requested tag not in history; Lemma D.2 "
                           "violated)");
      error = true;
      continue;
    }
    held.push_back(*current);
    const std::span<const std::uint8_t> old_span = held.back();
    held.push_back(*wanted_value);
    entries.push_back({x, old_span, held.back()});
  }
  if (error) return;  // leave the read pending for other responders

  erasure::Symbol modified = msg.symbol;
  code_->reencode_batch(from, modified, entries);
  read->symbols[from] = std::move(modified);
  try_decode_pending_read(msg.opid);
}

// ---------------------------------------------------------------------------
// Internal actions (Algorithm 3).
// ---------------------------------------------------------------------------

void Server::run_internal_actions() {
  if (in_internal_actions_) return;  // re-entrancy via client callbacks
  in_internal_actions_ = true;
  bool progress = true;
  while (progress) {
    progress = false;
    while (apply_inqueue_step()) progress = true;
    if (encoding_step()) progress = true;
  }
  in_internal_actions_ = false;
}

bool Server::apply_inqueue_step() {
  if (inqueue_.empty()) return false;
  // Alg. 3 line 4: the causality predicate. Scanning (rather than testing
  // only the head) is needed for liveness -- see InQueue::pop_first_applicable.
  auto popped = inqueue_.pop_first_applicable([&](const InQueue::Entry& e) {
    const NodeId j = e.origin;
    if (e.tag.ts[j] != vc_[j] + 1) return false;
    if (config_.unsafe_skip_apply_order_check) return true;  // test-only seam
    for (NodeId p = 0; p < n_; ++p) {
      if (p != j && e.tag.ts[p] > vc_[p]) return false;
    }
    return true;
  });
  if (!popped) return false;
  const std::int64_t pt0 = m_phase_apply_ != nullptr ? wall_ns() : 0;
  InQueue::Entry entry = std::move(*popped);
  const NodeId j = entry.origin;
  vc_.set(j, entry.tag.ts[j]);
  lists_[entry.object].insert(entry.tag, entry.value);
  flight(obs::FlightKind::kApply, entry.object, j, &entry.tag);

  // Alg. 3 lines 8-12: clear pending reads this version can serve.
  std::vector<OpId> external_done;
  std::vector<OpId> internal_done;
  for (const auto& read : reads_.all()) {
    if (read.object != entry.object) continue;
    if (!read.is_internal() && read.requested[entry.object] <= entry.tag) {
      external_done.push_back(read.opid);
    } else if (read.is_internal() &&
               read.requested[entry.object] == entry.tag) {
      internal_done.push_back(read.opid);
    }
  }
  for (OpId opid : external_done) {
    if (PendingRead* read = reads_.find(opid)) {
      complete_pending_read(*read, entry.value, entry.tag);
      reads_.remove(opid);
    }
  }
  for (OpId opid : internal_done) {
    if (tracer_ != nullptr) {
      if (PendingRead* read = reads_.find(opid);
          read != nullptr && read->trace_id != 0) {
        tracer_->end_async("read.internal", id_, transport_->now(),
                           read->trace_id, {{"via", "inqueue"}});
      }
    }
    reads_.remove(opid);  // the value just landed in L[X]
  }
  if (m_phase_apply_ != nullptr) m_phase_apply_->observe(wall_ns() - pt0);
  return true;
}

bool Server::encoding_step() {
  bool changed = false;

  // Objects this server stores (Alg. 3 lines 15-25). All objects whose
  // history allows the current -> newest transform are collected first and
  // re-encoded through one fused reencode_batch pass (each symbol row
  // streamed once per Encoding action, not once per object); the per-object
  // bookkeeping (tags, dels, observability) runs after the batch.
  struct PendingReencode {
    ObjectId object;
    erasure::Value current;  // keeps the span alive until the batch runs
    erasure::Value newest;
    Tag highest;
  };
  std::vector<PendingReencode> batch;
  for (ObjectId x : code_->support(id_)) {
    const Tag highest = lists_[x].highest_tag();
    if (!(highest > m_tags_[x])) continue;
    const auto current = lists_[x].lookup(m_tags_[x]);
    if (current) {
      const auto newest = lists_[x].lookup(highest);
      CEC_CHECK(newest.has_value());
      batch.push_back({x, *current, *newest, highest});
    } else if (!reads_.has_internal_for(x, m_tags_[x])) {
      // Alg. 3 lines 22-25: recover the currently-encoded version via an
      // internal read so a later Encoding can re-encode away from it.
      ++counters_.internal_reads_started;
      PendingRead read;
      read.client = kLocalhost;
      read.opid = next_internal_opid();
      read.object = x;
      read.requested = m_tags_;
      read.symbols.assign(n_, std::nullopt);
      read.symbols[id_] = m_val_;
      read.broadcast = config_.fanout == ReadFanout::kBroadcast;
      read.started_at = obs_now();
      if (obs_enabled_) {
        read.trace_id = obs_read_internal_begin(x, read.started_at);
      }
      register_read(std::move(read));
      // The internal read may have completed synchronously from our own
      // symbol; if the needed version just landed in L[X], loop again so
      // the re-encode branch above runs.
      if (lists_[x].contains(m_tags_[x])) changed = true;
    }
  }

  if (!batch.empty()) {
    const std::int64_t pt0 = m_phase_encode_ != nullptr ? wall_ns() : 0;
    std::vector<erasure::Code::ReencodeEntry> entries;
    entries.reserve(batch.size());
    for (const PendingReencode& p : batch) {
      entries.push_back({p.object, p.current, p.newest});
    }
    code_->reencode_batch(id_, m_val_, entries);
    if (m_phase_encode_ != nullptr) {
      m_phase_encode_->observe(wall_ns() - pt0);
    }
    for (const PendingReencode& p : batch) {
      m_tags_[p.object] = p.highest;
      ++counters_.reencodes;
      flight(obs::FlightKind::kEncode, p.object, 0, &p.highest);
      if (obs_enabled_) obs_reencode(p.object);
      record_del(p.object, p.highest);
      send_del_to_containing(p.object, p.highest);
    }
    changed = true;
  }

  // Bookkeeping for objects this server does not store (lines 26-32).
  for (ObjectId x = 0; x < k_; ++x) {
    if (code_->contains(id_, x)) continue;
    const Tag highest = lists_[x].highest_tag();
    if (!(highest > m_tags_[x])) continue;
    const auto& containing = containing_servers(x);
    const auto floor_r = dels_[x].floor_of(containing);
    if (!floor_r) continue;
    // max(U & Ubar): the highest tag in L[X] that is covered by every
    // containing server's del announcements and exceeds M.tagvec[X].
    const auto candidate = lists_[x].highest_leq(*floor_r);
    if (!candidate || !(*candidate > m_tags_[x])) continue;
    m_tags_[x] = *candidate;
    record_del(x, *candidate);
    broadcast_del(x, *candidate, /*dedupe=*/config_.dedupe_del_broadcasts);
    changed = true;
  }
  return changed;
}

void Server::run_garbage_collection() {
  ++counters_.gc_runs;
  active_trace_ = 0;  // timer-driven: no client operation to attribute to
  const SimTime obs_t0 = obs_now();
  std::uint64_t total_removed = 0;
  for (ObjectId x = 0; x < k_; ++x) {
    // tmax[X] = max(S) (Alg. 3 lines 36-37); monotone by construction.
    if (const auto floor = dels_[x].floor_all()) {
      if (*floor > tmax_[x]) tmax_[x] = *floor;
    }
    CEC_DCHECK(tmax_[x] <= m_tags_[x]);  // invariant (Sec. 3)

    // Protected tags T (line 39): requested tags of *any* pending read.
    std::set<Tag> protected_tags;
    for (const auto& read : reads_.all()) {
      if (read.requested[x] < m_tags_[x]) {
        protected_tags.insert(read.requested[x]);
      }
    }
    const auto not_protected = [&](const Tag& t) {
      return protected_tags.count(t) == 0;
    };

    std::size_t removed = 0;
    const Tag tm = tmax_[x];
    if (tm == m_tags_[x] && dels_[x].has_exact_from_all(m_tags_[x]) &&
        lists_[x].highest_tag() <= m_tags_[x]) {
      // Line 40-41: full cleanup, including the currently-encoded version.
      removed = lists_[x].erase_if(
          [&](const Tag& t) { return t <= tm && not_protected(t); });
    } else if (tm < m_tags_[x] && !code_->contains(id_, x)) {
      // Line 42-43.
      removed = lists_[x].erase_if(
          [&](const Tag& t) { return t <= tm && not_protected(t); });
    } else {
      // Line 44: strict inequality for stored objects.
      removed = lists_[x].erase_if(
          [&](const Tag& t) { return t < tm && not_protected(t); });
    }
    counters_.history_entries_collected += removed;
    total_removed += removed;

    // Lines 45-48: containing servers re-announce max(U) to everyone so
    // non-containing servers can advance their bookkeeping and GC.
    if (code_->contains(id_, x)) {
      const auto floor_r = dels_[x].floor_of(containing_servers(x));
      if (floor_r) {
        broadcast_del(x, *floor_r, /*dedupe=*/config_.dedupe_del_broadcasts);
      }
    }

    if (config_.compact_del_lists) dels_[x].compact(tmax_[x]);
  }
  flight(obs::FlightKind::kGc, static_cast<std::uint32_t>(total_removed));
  if (m_gc_collected_ != nullptr) m_gc_collected_->inc(total_removed);
  if (tracer_ != nullptr) {
    tracer_->complete("gc", id_, obs_t0, transport_->now() - obs_t0,
                      {{"removed", total_removed}});
  }
  run_internal_actions();
}

// ---------------------------------------------------------------------------
// Crash recovery (DESIGN.md §9).
// ---------------------------------------------------------------------------

persist::ServerImage Server::capture_image() const {
  persist::ServerImage image;
  image.node = id_;
  image.num_servers = static_cast<std::uint32_t>(n_);
  image.num_objects = static_cast<std::uint32_t>(k_);
  image.value_bytes = static_cast<std::uint32_t>(code_->value_bytes());
  image.vc = vc_;
  image.m_val = m_val_;
  image.m_tags = m_tags_;
  image.tmax = tmax_;
  image.last_del_broadcast_all = last_del_broadcast_all_;
  image.internal_opid_counter = internal_opid_counter_;
  for (ObjectId x = 0; x < k_; ++x) {
    for (const auto& [tag, value] : lists_[x].entries()) {
      image.history.push_back({x, tag, value});
    }
    for (NodeId s = 0; s < n_; ++s) {
      for (const Tag& tag : dels_[x].entries_from(s)) {
        image.dels.push_back({x, s, tag});
      }
    }
  }
  for (const auto& e : inqueue_.entries()) {
    image.inqueue.push_back({e.origin, e.object, e.tag, e.value});
  }
  return image;
}

void Server::restore_image(const persist::ServerImage* image) {
  vc_ = VectorClock(n_);
  inqueue_ = InQueue{};
  lists_.clear();
  dels_.clear();
  for (std::size_t x = 0; x < k_; ++x) {
    lists_.emplace_back(n_, code_->value_bytes());
    dels_.emplace_back(n_);
  }
  m_val_ = code_->zero_symbol(id_);
  m_tags_ = zero_tag_vector(k_, n_);
  reads_ = ReadList{};
  tmax_ = zero_tag_vector(k_, n_);
  last_del_broadcast_all_ = zero_tag_vector(k_, n_);
  recovering_ = false;
  if (recovery_epoch_ == 0) recovery_epoch_ = 1;  // arm the stale-app guard

  std::uint64_t counter_base = 0;
  if (image != nullptr) {
    CEC_CHECK_MSG(image->node == id_ && image->num_servers == n_ &&
                      image->num_objects == k_ &&
                      image->value_bytes == code_->value_bytes(),
                  "restore_image: snapshot does not describe server " << id_);
    vc_ = image->vc;
    m_val_ = image->m_val;
    m_tags_ = image->m_tags;
    tmax_ = image->tmax;
    last_del_broadcast_all_ = image->last_del_broadcast_all;
    counter_base = image->internal_opid_counter;
    for (const auto& e : image->history) {
      lists_[e.object].insert(e.tag, e.value);
    }
    for (const auto& e : image->dels) dels_[e.object].add(e.server, e.tag);
    for (const auto& e : image->inqueue) {
      inqueue_.insert(InQueue::Entry{e.origin, e.object, e.value, e.tag});
    }
  }
  internal_opid_counter_ = counter_base + kOpidRecoverySkip;
}

void Server::restore_from_journal(const persist::RecoveredState& recovered) {
  CEC_CHECK_MSG(recovered.error.empty(),
                "restore_from_journal: " << recovered.error);
  restore_image(recovered.image ? &*recovered.image : nullptr);
  const bool was_recording = journal_ == nullptr || journal_->recording();
  if (journal_ != nullptr) journal_->set_recording(false);
  for (const auto& record : recovered.wal) {
    if (record.kind == persist::WalRecord::Kind::kMessage) {
      on_message(record.from,
                 deserialize_message(std::span(record.payload)));
    } else {
      client_write(record.client, record.opid, record.object,
                   erasure::Value(record.payload));
    }
  }
  if (journal_ != nullptr && was_recording) journal_->set_recording(true);
  end_restore();
}

void Server::end_restore() { reads_ = ReadList{}; }

void Server::set_peer_down(NodeId peer, bool down) {
  CEC_CHECK(peer < n_);
  if (down) {
    peer_down_mask_ |= 1u << peer;
  } else {
    peer_down_mask_ &= ~(1u << peer);
  }
}

std::uint32_t Server::rejoin_pull_targets() {
  std::uint32_t all = 0;
  for (NodeId j : others_) all |= 1u << j;
  if (config_.rejoin_catchup != RejoinCatchup::kRepairPlan) return all;
  // The helper set sufficient to rebuild our codeword symbol also suffices
  // for write catch-up: any single live up-to-date member's push converges
  // the round (the §9 superset argument), and maybe_finish_rejoin chases
  // clocks only a non-helper advertised.
  const std::uint32_t erased = peer_down_mask_ | (1u << id_);
  const auto plan = code_->plan_symbol_repair(id_, erased);
  if (!plan.has_value() || (plan->helper_mask & all) == 0) return all;
  ++counters_.repair_plan_hits;
  counters_.repair_bytes += plan->fetch_bytes;
  if (m_repair_plan_hits_ != nullptr) {
    m_repair_plan_hits_->inc();
    m_repair_bytes_->inc(plan->fetch_bytes);
  }
  return plan->helper_mask & all;
}

void Server::begin_rejoin() {
  ++counters_.recoveries;
  if (m_recoveries_ != nullptr) m_recoveries_->inc();
  ++recovery_epoch_;
  if (config_.unsafe_skip_rejoin_catchup) return;  // test-only fault seam
  if (others_.empty()) return;  // single-server cluster: nothing to pull
  recovering_ = true;
  rejoin_started_at_ = transport_->now();
  rejoin_pull_mask_ = rejoin_pull_targets();
  rejoin_pulled_ = 0;
  rejoin_reply_seen_ = 0;
  rejoin_reply_vcs_.assign(n_, VectorClock(n_));
  rejoin_escalated_ = false;
  rejoin_waiting_.assign(n_, false);
  rejoin_waiting_count_ = 0;
  for (NodeId j : others_) {
    if (!(rejoin_pull_mask_ >> j & 1)) continue;
    rejoin_waiting_[j] = true;
    ++rejoin_waiting_count_;
  }
  const std::uint64_t epoch = recovery_epoch_;
  // The whole rejoin round (digest, replies, pulls, pushes) is one flow.
  active_trace_ = tracer_ != nullptr ? tracer_->new_id() : 0;
  flight(obs::FlightKind::kRecovery, /*phase=*/0,
         static_cast<std::uint32_t>(epoch));
  // The digest still goes to everyone: every reply reports a peer clock
  // (input to the straggler chase) and triggers the symmetric push to
  // behind peers. Only the pulls are narrowed to the helper set.
  transport_->multicast(others_, [&] {
    auto msg = std::make_unique<RecoverDigestMessage>(epoch, vc_, wire_);
    stamp_trace(*msg, active_trace_);
    return msg;
  });
  // Peers that are themselves down never push; widen a narrowed round once
  // at the deadline, then finish with whatever arrived (they push to us
  // when their own rejoin runs).
  transport_->schedule_after(config_.rejoin_timeout_ns, [this, epoch] {
    if (recovering_ && recovery_epoch_ == epoch) rejoin_deadline(epoch);
  });
  if (tracer_ != nullptr) {
    tracer_->instant("rejoin.begin", id_, transport_->now(),
                     {{"epoch", epoch}});
  }
}

void Server::handle_recover_digest(NodeId from,
                                   const RecoverDigestMessage& msg) {
  flight(obs::FlightKind::kRecovery, /*phase=*/1,
         static_cast<std::uint32_t>(msg.epoch));
  auto reply = std::make_unique<RecoverDigestReplyMessage>(msg.epoch, vc_,
                                                           wire_);
  stamp_trace(*reply, active_trace_);
  transport_->send(from, std::move(reply));
}

void Server::handle_recover_digest_reply(NodeId from,
                                         const RecoverDigestReplyMessage& msg) {
  if (!recovering_ || msg.epoch != recovery_epoch_) return;
  flight(obs::FlightKind::kRecovery, /*phase=*/2,
         static_cast<std::uint32_t>(msg.epoch));
  if (from < n_) {
    rejoin_reply_seen_ |= 1u << from;
    rejoin_reply_vcs_[from] = msg.vc;
  }
  // Pull only from the helper set; other replies are recorded for the
  // straggler chase in maybe_finish_rejoin.
  if ((rejoin_pull_mask_ >> from & 1) && !(rejoin_pulled_ >> from & 1)) {
    send_recover_pull(from);
  }
  // The peer may be missing writes too (an app multicast of ours lost to
  // the crash window); push it anything its clock does not cover.
  bool behind = false;
  for (NodeId j = 0; j < n_; ++j) {
    if (msg.vc[j] < vc_[j]) {
      behind = true;
      break;
    }
  }
  if (behind) send_recover_push(from, msg.epoch, msg.vc);
}

void Server::send_recover_pull(NodeId to) {
  rejoin_pulled_ |= 1u << to;
  std::uint32_t all = 0;
  for (NodeId j : others_) all |= 1u << j;
  if (rejoin_pull_mask_ != all) ++counters_.rejoin_helper_pulls;
  if (!rejoin_waiting_[to]) {
    rejoin_waiting_[to] = true;
    ++rejoin_waiting_count_;
  }
  auto pull = std::make_unique<RecoverPullMessage>(recovery_epoch_, vc_,
                                                   wire_);
  stamp_trace(*pull, active_trace_);
  transport_->send(to, std::move(pull));
}

void Server::handle_recover_pull(NodeId from, const RecoverPullMessage& msg) {
  send_recover_push(from, msg.epoch, msg.vc);
}

void Server::send_recover_push(NodeId to, std::uint64_t epoch,
                               const VectorClock& target_vc) {
  std::vector<RecoverPushMessage::HistoryItem> history;
  std::vector<RecoverPushMessage::InqueueItem> inq;
  std::vector<RecoverPushMessage::DelItem> dels;
  for (ObjectId x = 0; x < k_; ++x) {
    for (const auto& [tag, value] : lists_[x].entries()) {
      if (!tag.ts.leq(target_vc)) history.push_back({x, tag, value});
    }
    // All del announcements travel (compaction keeps them small): they let
    // the receiver's GC and non-containing bookkeeping resume immediately.
    for (NodeId s = 0; s < n_; ++s) {
      for (const Tag& tag : dels_[x].entries_from(s)) {
        dels.push_back({x, s, tag});
      }
    }
  }
  for (const auto& e : inqueue_.entries()) {
    if (!e.tag.ts.leq(target_vc)) {
      inq.push_back({e.origin, e.object, e.tag, e.value});
    }
  }
  ++counters_.rejoin_pushes_sent;
  auto push = std::make_unique<RecoverPushMessage>(
      epoch, vc_, std::move(history), std::move(inq), std::move(dels), wire_);
  stamp_trace(*push, active_trace_);
  transport_->send(to, std::move(push));
}

void Server::handle_recover_push(NodeId from, const RecoverPushMessage& msg) {
  // Merging is safe at any server, recovering or not: pushed history
  // entries are valid versions, del announcements are monotone facts, and
  // every write the sender's clock covers is either pushed here, already
  // applied locally, or globally encoded (its value retrievable through the
  // ordinary read machinery) -- the superset argument of DESIGN.md §9.
  for (const auto& h : msg.history) {
    if (!lists_[h.object].contains(h.tag)) {
      ++counters_.catchup_history_entries;
    }
    lists_[h.object].insert(h.tag, h.value);
  }
  for (const auto& d : msg.dels) dels_[d.object].add(d.server, d.tag);
  for (const auto& q : msg.inqueue) {
    if (q.tag.ts[q.origin] <= vc_[q.origin]) {
      lists_[q.object].insert(q.tag, q.value);  // already applied here
    } else if (!inqueue_.contains(q.tag)) {
      inqueue_.insert(InQueue::Entry{q.origin, q.object, q.value, q.tag});
    }
  }
  vc_.merge(msg.vc);
  // Entries the merged clock now covers can never satisfy the apply
  // predicate again; absorb their values into the history lists instead.
  for (auto& e : inqueue_.extract_if([&](const InQueue::Entry& entry) {
         return entry.tag.ts[entry.origin] <= vc_[entry.origin];
       })) {
    lists_[e.object].insert(e.tag, e.value);
  }

  if (recovering_ && msg.epoch == recovery_epoch_) {
    ++counters_.rejoin_pushes_received;
    counters_.catchup_bytes += msg.wire_bytes();
    if (m_catchup_bytes_ != nullptr) m_catchup_bytes_->inc(msg.wire_bytes());
    if (from < rejoin_waiting_.size() && rejoin_waiting_[from]) {
      rejoin_waiting_[from] = false;
      --rejoin_waiting_count_;
      if (rejoin_waiting_count_ == 0) maybe_finish_rejoin();
    }
  }
}

void Server::maybe_finish_rejoin() {
  if (!recovering_ || rejoin_waiting_count_ != 0) return;
  // Straggler chase: a peer outside the pull set whose digest reply
  // advertised a clock component our merged clock still misses uniquely
  // holds writes no helper pushed (e.g. an app multicast lost to the crash
  // window). Pull from each such peer once before declaring convergence.
  bool pulled = false;
  for (NodeId j : others_) {
    if (!(rejoin_reply_seen_ >> j & 1) || (rejoin_pulled_ >> j & 1)) continue;
    const VectorClock& peer = rejoin_reply_vcs_[j];
    for (NodeId i = 0; i < n_; ++i) {
      if (peer[i] > vc_[i]) {
        send_recover_pull(j);
        pulled = true;
        break;
      }
    }
  }
  if (!pulled) finish_rejoin();
}

void Server::rejoin_deadline(std::uint64_t epoch) {
  if (!recovering_ || recovery_epoch_ != epoch) return;
  std::uint32_t all = 0;
  for (NodeId j : others_) all |= 1u << j;
  if (!rejoin_escalated_ && rejoin_pull_mask_ != all) {
    // A narrowed round missed its deadline (a helper was down or slow):
    // widen once to every peer not yet pulled, exactly the kPullAll shape.
    rejoin_escalated_ = true;
    rejoin_pull_mask_ = all;
    bool pulled = false;
    for (NodeId j : others_) {
      if (rejoin_pulled_ >> j & 1) continue;
      send_recover_pull(j);
      pulled = true;
    }
    if (pulled) {
      transport_->schedule_after(config_.rejoin_timeout_ns, [this, epoch] {
        if (recovering_ && recovery_epoch_ == epoch) rejoin_deadline(epoch);
      });
      return;
    }
  }
  finish_rejoin();
}

void Server::finish_rejoin() {
  recovering_ = false;
  flight(obs::FlightKind::kRecovery, /*phase=*/3,
         static_cast<std::uint32_t>(recovery_epoch_));
  const SimTime duration = transport_->now() - rejoin_started_at_;
  if (m_recovery_duration_ != nullptr) {
    m_recovery_duration_->observe(static_cast<std::uint64_t>(duration));
  }
  if (tracer_ != nullptr) {
    tracer_->complete("rejoin", id_, rejoin_started_at_, duration,
                      {{"pushes", counters_.rejoin_pushes_received},
                       {"bytes", counters_.catchup_bytes}});
  }
  // Catch-up filled L with everything peers still hold; Encoding now
  // re-encodes toward the newest versions. Internal reads can always fetch
  // a still-encoded old version: our frozen del announcements blocked its
  // collection everywhere while we were down.
  run_internal_actions();
}

// ---------------------------------------------------------------------------
// Pending-read plumbing.
// ---------------------------------------------------------------------------

void Server::complete_pending_read(PendingRead& read,
                                   const erasure::Value& value,
                                   const Tag& value_tag) {
  flight(obs::FlightKind::kReadDone, read.object, 0, &value_tag);
  if (read.is_internal()) {
    if (tracer_ != nullptr && read.trace_id != 0) {
      tracer_->end_async("read.internal", id_, transport_->now(),
                         read.trace_id,
                         {{"via", "decode"}, {"dep_tag", tag_string(value_tag)}});
      read.trace_id = 0;
    }
    lists_[read.object].insert(value_tag, value);
  } else {
    CEC_CHECK(read.callback != nullptr);
    if (tracer_ != nullptr && read.trace_id != 0) {
      // dep_tag: the write this read causally depends on (the returned
      // version); req_tag: the version the inquiry round requested.
      tracer_->end_async(
          "read.remote", id_, transport_->now(), read.trace_id,
          {{"dep_tag", tag_string(value_tag)},
           {"req_tag", tag_string(read.requested[read.object])}});
      read.trace_id = 0;
    }
    if (m_read_latency_ != nullptr) {
      m_read_latency_->observe(
          static_cast<std::uint64_t>(transport_->now() - read.started_at));
    }
    read.callback(value, value_tag, vc_);
  }
}

void Server::try_decode_pending_read(OpId opid) {
  PendingRead* read = reads_.find(opid);
  if (read == nullptr) return;
  std::vector<NodeId> servers;
  std::vector<erasure::Symbol> symbols;
  for (NodeId s = 0; s < n_; ++s) {
    if (read->symbols[s].has_value()) {
      servers.push_back(s);
      symbols.push_back(*read->symbols[s]);
    }
  }
  if (!code_->is_recovery_set(read->object, servers)) return;
  const erasure::Value value = code_->decode(read->object, servers, symbols);
  complete_pending_read(*read, value, read->requested[read->object]);
  reads_.remove(opid);
}

void Server::register_read(PendingRead read) {
  const OpId opid = read.opid;
  const bool escalate = !read.broadcast;
  reads_.add(std::move(read));

  const PendingRead& stored = *reads_.find(opid);
  const std::vector<NodeId> targets = initial_fanout_targets(stored);
  send_val_inq_to(targets, stored);

  // The local symbol recorded at registration may already form a recovery
  // set (e.g. an internal read at a server whose own symbol decodes the
  // object) -- complete immediately in that case. Mandatory when the
  // fan-out chose a recovery set with no remote members.
  if (config_.opportunistic_local_decode || targets.empty()) {
    try_decode_pending_read(opid);
  }

  if (escalate && reads_.find(opid) != nullptr) {
    // Footnote 14: fall back to a broadcast if the chosen recovery set does
    // not produce an answer in time (e.g. one of its members crashed).
    // Re-sending the *original* inquiry would be unsound: the garbage-
    // collection protections (Lemmas D.1/D.2) only cover inquiries sent at
    // the moment their requested tag vector was M.tagvec, so a late inquiry
    // with stale tags can be unanswerable. Instead the pending read is
    // dropped and restarted with fresh tags and full broadcast.
    transport_->schedule_after(config_.fanout_timeout_ns,
                               [this, opid] { retry_pending_read(opid); });
  }
}

void Server::retry_pending_read(OpId opid) {
  PendingRead* pending = reads_.find(opid);
  if (pending == nullptr) return;  // served already
  const ClientId client = pending->client;
  const ObjectId object = pending->object;
  const SimTime started_at = pending->started_at;
  const std::uint64_t trace_id = pending->trace_id;
  ReadCallback callback = std::move(pending->callback);
  pending->trace_id = 0;  // span ownership moves to the retry (or the end
                          // emitted below); the removal must not end it
  reads_.remove(opid);

  if (client != kLocalhost) {
    // Re-enter the full read path (the history list may serve it by now);
    // if it registers again, it registers as a broadcast. The opid is
    // server-generated: the client correlates through its callback.
    const Tag highest = lists_[object].highest_tag();
    if (highest >= m_tags_[object]) {
      const auto value = lists_[object].lookup(highest);
      CEC_CHECK(value.has_value());
      if (tracer_ != nullptr && trace_id != 0) {
        tracer_->end_async("read.remote", id_, transport_->now(), trace_id,
                           {{"via", "retry_history"}});
      }
      if (m_read_latency_ != nullptr) {
        m_read_latency_->observe(
            static_cast<std::uint64_t>(transport_->now() - started_at));
      }
      callback(*value, highest, vc_);
      return;
    }
    PendingRead retry;
    retry.client = client;
    retry.opid = next_internal_opid();
    retry.object = object;
    retry.requested = m_tags_;
    retry.symbols.assign(n_, std::nullopt);
    retry.symbols[id_] = m_val_;
    retry.callback = std::move(callback);
    retry.broadcast = true;
    // The retry continues the original operation: same span, same start.
    retry.started_at = started_at;
    retry.trace_id = trace_id;
    register_read(std::move(retry));
    return;
  }

  // Internal read: recreate with fresh tags (and full broadcast) only if
  // the Encoding action still needs the currently-encoded version.
  if (tracer_ != nullptr && trace_id != 0) {
    tracer_->end_async("read.internal", id_, transport_->now(), trace_id,
                       {{"via", "retry"}});
  }
  const Tag highest = lists_[object].highest_tag();
  if (highest > m_tags_[object] && !lists_[object].contains(m_tags_[object]) &&
      !reads_.has_internal_for(object, m_tags_[object])) {
    PendingRead retry;
    retry.client = kLocalhost;
    retry.opid = next_internal_opid();
    retry.object = object;
    retry.requested = m_tags_;
    retry.symbols.assign(n_, std::nullopt);
    retry.symbols[id_] = m_val_;
    retry.broadcast = true;
    retry.started_at = obs_now();
    if (tracer_ != nullptr) {
      retry.trace_id = tracer_->begin_async(
          "read.internal", id_, retry.started_at,
          {{"object", std::uint64_t{object}}, {"retry", 1}});
    }
    register_read(std::move(retry));
  }
  run_internal_actions();
}

void Server::send_val_inq_to(const std::vector<NodeId>& targets,
                             const PendingRead& read) {
  if (targets.empty()) return;
  for ([[maybe_unused]] NodeId j : targets) CEC_DCHECK(j != id_);
  transport_->multicast(targets, [&] {
    auto msg = std::make_unique<ValInqMessage>(read.client, read.opid,
                                               read.object, read.requested,
                                               wire_);
    // Inquiries continue the read's own trace (the async span id doubles as
    // the flow trace id), so write flows and read flows stay distinct even
    // when an inquiry is sent from inside another message's handler.
    stamp_trace(*msg, read.trace_id);
    return msg;
  });
}

std::vector<NodeId> Server::initial_fanout_targets(const PendingRead& read) {
  const ObjectId object = read.object;
  std::vector<NodeId> targets;
  if (read.broadcast) {
    for (NodeId j = 0; j < n_; ++j) {
      if (j != id_) targets.push_back(j);
    }
    return targets;
  }
  // Degraded read: with peers known down, the proximity pick below could
  // choose a recovery set containing a dead member and eat the full
  // fanout_timeout_ns before the footnote-14 broadcast. Ask the code for a
  // repair-minimal surviving set instead; fall back to the proximity pick
  // when no plan survives the erasure pattern.
  if (config_.repair_degraded_reads && peer_down_mask_ != 0) {
    const std::uint32_t erased = peer_down_mask_ & ~(1u << id_);
    if (const auto plan = code_->plan_object_repair(object, erased, id_)) {
      ++counters_.degraded_reads;
      ++counters_.repair_plan_hits;
      counters_.repair_bytes += plan->fetch_bytes;
      if (m_degraded_reads_ != nullptr) {
        m_degraded_reads_->inc();
        m_repair_plan_hits_->inc();
        m_repair_bytes_->inc(plan->fetch_bytes);
      }
      flight(obs::FlightKind::kDegradedRead, object, plan->helper_mask);
      for (NodeId j = 0; j < n_; ++j) {
        if (j != id_ && (plan->helper_mask >> j & 1)) targets.push_back(j);
      }
      return targets;
    }
  }
  // Pick the recovery set with the smallest worst-member proximity
  // (excluding ourselves -- our own symbol is already in hand).
  const auto proximity = [&](NodeId j) {
    if (j < config_.proximity.size()) return config_.proximity[j];
    return static_cast<double>(j);
  };
  const std::vector<erasure::RecoverySet>& sets =
      code_->recovery_sets(object);
  double best_cost = -1;
  const erasure::RecoverySet* best = nullptr;
  for (const auto& set : sets) {
    double cost = 0;
    for (NodeId j : set) {
      if (j != id_) cost = std::max(cost, proximity(j));
    }
    if (best == nullptr || cost < best_cost) {
      best = &set;
      best_cost = cost;
    }
  }
  CEC_CHECK(best != nullptr);
  for (NodeId j : *best) {
    if (j != id_) targets.push_back(j);
  }
  return targets;
}

// ---------------------------------------------------------------------------
// del bookkeeping.
// ---------------------------------------------------------------------------

void Server::record_del(ObjectId object, const Tag& tag) {
  dels_[object].add(id_, tag);
  flight(obs::FlightKind::kDelRecord, object, 0, &tag);
}

void Server::send_del_to_containing(ObjectId object, const Tag& tag) {
  if (config_.del_routing == DelRouting::kViaLeader &&
      id_ != config_.del_leader) {
    // One hop to the leader, who forwards to everyone -- a superset of the
    // containing servers, which only adds (harmless) DelL entries.
    auto msg = std::make_unique<DelMessage>(object, tag, id_,
                                            /*forward=*/true, wire_);
    stamp_trace(*msg, active_trace_);
    transport_->send(config_.del_leader, std::move(msg));
    return;
  }
  std::vector<NodeId> targets;
  for (NodeId j : containing_servers(object)) {
    if (j != id_) targets.push_back(j);
  }
  transport_->multicast(targets, [&] {
    auto msg = std::make_unique<DelMessage>(object, tag, id_,
                                            /*forward=*/false, wire_);
    stamp_trace(*msg, active_trace_);
    return msg;
  });
}

void Server::broadcast_del(ObjectId object, const Tag& tag, bool dedupe) {
  if (dedupe && !(tag > last_del_broadcast_all_[object])) return;
  last_del_broadcast_all_[object] = tag;
  if (config_.del_routing == DelRouting::kViaLeader &&
      id_ != config_.del_leader) {
    auto msg = std::make_unique<DelMessage>(object, tag, id_,
                                            /*forward=*/true, wire_);
    stamp_trace(*msg, active_trace_);
    transport_->send(config_.del_leader, std::move(msg));
    return;
  }
  transport_->multicast(others_, [&] {
    auto msg = std::make_unique<DelMessage>(object, tag, id_,
                                            /*forward=*/false, wire_);
    stamp_trace(*msg, active_trace_);
    return msg;
  });
}

OpId Server::next_internal_opid() {
  return kInternalOpidBase | (static_cast<OpId>(id_) << 40) |
         internal_opid_counter_++;
}

// ---------------------------------------------------------------------------
// Introspection.
// ---------------------------------------------------------------------------

StorageStats Server::storage() const {
  StorageStats stats;
  stats.codeword_bytes = m_val_.size();
  for (ObjectId x = 0; x < k_; ++x) {
    stats.history_bytes += lists_[x].payload_bytes();
    stats.history_entries += lists_[x].size();
    stats.dell_entries += dels_[x].total_entries();
  }
  stats.inqueue_bytes = inqueue_.payload_bytes();
  stats.inqueue_entries = inqueue_.size();
  stats.readl_entries = reads_.size();
  return stats;
}

}  // namespace causalec
