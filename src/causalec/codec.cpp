#include "causalec/codec.h"

#include <cstring>

#include "causalec/wire_format.h"
#include "common/expect.h"

namespace causalec {

namespace {

using wire::Writer;

enum class MsgType : std::uint8_t {
  kApp = 1,
  kDel = 2,
  kValInq = 3,
  kValResp = 4,
  kValRespEncoded = 5,
  kRecoverDigest = 6,
  kRecoverDigestReply = 7,
  kRecoverPull = 8,
  kRecoverPush = 9,
};

// Minimal serialized footprint of the variable-size primitives; element
// counts read off the wire are capped at remaining / footprint before they
// size an allocation, so a hostile length field can never drive a huge
// reserve (let alone an out-of-bounds read -- SafeReader latches those).
constexpr std::size_t kClockEntryBytes = 8;            // one u64 component
constexpr std::size_t kMinTagBytes = 4 + 8;            // empty clock + id
constexpr std::size_t kMinHistoryItemBytes = 4 + kMinTagBytes + 4;
constexpr std::size_t kMinInqueueItemBytes = 4 + 4 + kMinTagBytes + 4;
constexpr std::size_t kMinDelItemBytes = 4 + 4 + kMinTagBytes;

}  // namespace

namespace {

void write_message(Writer& w, const sim::Message& message) {
  if (const auto* app = dynamic_cast<const AppMessage*>(&message)) {
    w.u8(static_cast<std::uint8_t>(MsgType::kApp));
    w.u64(app->wire);
    w.u32(app->object);
    w.bytes(app->value);
    w.tag(app->tag);
  } else if (const auto* del = dynamic_cast<const DelMessage*>(&message)) {
    w.u8(static_cast<std::uint8_t>(MsgType::kDel));
    w.u64(del->wire);
    w.u32(del->object);
    w.u32(del->origin);
    w.u8(del->forward ? 1 : 0);
    w.tag(del->tag);
  } else if (const auto* inq = dynamic_cast<const ValInqMessage*>(&message)) {
    w.u8(static_cast<std::uint8_t>(MsgType::kValInq));
    w.u64(inq->wire);
    w.u64(inq->client);
    w.u64(inq->opid);
    w.u32(inq->object);
    w.tagvec(inq->wanted);
  } else if (const auto* resp =
                 dynamic_cast<const ValRespMessage*>(&message)) {
    w.u8(static_cast<std::uint8_t>(MsgType::kValResp));
    w.u64(resp->wire);
    w.u64(resp->client);
    w.u64(resp->opid);
    w.u32(resp->object);
    w.bytes(resp->value);
    w.tagvec(resp->requested);
  } else if (const auto* enc =
                 dynamic_cast<const ValRespEncodedMessage*>(&message)) {
    w.u8(static_cast<std::uint8_t>(MsgType::kValRespEncoded));
    w.u64(enc->wire);
    w.u64(enc->client);
    w.u64(enc->opid);
    w.u32(enc->object);
    w.bytes(enc->symbol);
    w.tagvec(enc->symbol_tags);
    w.tagvec(enc->requested);
  } else if (const auto* dig =
                 dynamic_cast<const RecoverDigestMessage*>(&message)) {
    w.u8(static_cast<std::uint8_t>(MsgType::kRecoverDigest));
    w.u64(dig->wire);
    w.u64(dig->epoch);
    w.clock(dig->vc);
  } else if (const auto* reply =
                 dynamic_cast<const RecoverDigestReplyMessage*>(&message)) {
    w.u8(static_cast<std::uint8_t>(MsgType::kRecoverDigestReply));
    w.u64(reply->wire);
    w.u64(reply->epoch);
    w.clock(reply->vc);
  } else if (const auto* pull =
                 dynamic_cast<const RecoverPullMessage*>(&message)) {
    w.u8(static_cast<std::uint8_t>(MsgType::kRecoverPull));
    w.u64(pull->wire);
    w.u64(pull->epoch);
    w.clock(pull->vc);
  } else if (const auto* push =
                 dynamic_cast<const RecoverPushMessage*>(&message)) {
    w.u8(static_cast<std::uint8_t>(MsgType::kRecoverPush));
    w.u64(push->wire);
    w.u64(push->epoch);
    w.clock(push->vc);
    w.u32(static_cast<std::uint32_t>(push->history.size()));
    for (const auto& h : push->history) {
      w.u32(h.object);
      w.tag(h.tag);
      w.bytes(h.value);
    }
    w.u32(static_cast<std::uint32_t>(push->inqueue.size()));
    for (const auto& q : push->inqueue) {
      w.u32(q.origin);
      w.u32(q.object);
      w.tag(q.tag);
      w.bytes(q.value);
    }
    w.u32(static_cast<std::uint32_t>(push->dels.size()));
    for (const auto& d : push->dels) {
      w.u32(d.object);
      w.u32(d.server);
      w.tag(d.tag);
    }
  } else {
    CEC_CHECK_MSG(false, "codec: unknown message type "
                             << message.type_name());
  }
  // Optional 16-byte trace-context trailer. Appended only when the message
  // is traced, so untraced frames stay byte-identical to the pre-trailer
  // format (and old frames without the trailer still decode -- see the
  // matching branch in deserialize_message).
  if (message.trace.traced()) {
    w.trace_context(message.trace);
  }
}

}  // namespace

std::vector<std::uint8_t> serialize_message(const sim::Message& message) {
  // wire_bytes() is the cost model's estimate of the serialized size --
  // close enough that the common messages need no reallocation.
  Writer w(16 + message.wire_bytes());
  write_message(w, message);
  return w.take();
}

erasure::Buffer serialize_message_frame(const sim::Message& message) {
  Writer w(16 + message.wire_bytes());
  write_message(w, message);
  return w.take_frame();
}

sim::MessagePtr deserialize_message(std::span<const std::uint8_t> buffer) {
  return deserialize_message(erasure::Buffer::copy_of(buffer));
}

sim::MessagePtr deserialize_message(erasure::Buffer frame) {
  std::string error;
  auto out = try_deserialize_message(std::move(frame), &error);
  CEC_CHECK_MSG(out != nullptr, "codec: " << error);
  return out;
}

sim::MessagePtr try_deserialize_message(erasure::Buffer frame,
                                        std::string* error) {
  wire::SafeReader r(std::move(frame));
  const auto type = static_cast<MsgType>(r.u8());
  const std::uint64_t wire = r.u64();
  // Per-primitive element caps, all derived from the bytes actually in the
  // frame (see the kMin*Bytes constants): loose upper bounds -- SafeReader
  // still bounds-checks every read -- but tight enough that no corrupted
  // count can size an allocation beyond the frame itself.
  const std::size_t body = r.remaining();
  const std::size_t clock_cap = body / kClockEntryBytes;
  const std::size_t tag_cap = body / kMinTagBytes;
  // The WireModel argument is irrelevant: the recorded wire size (the cost
  // model's output at the sender) is restored verbatim below.
  const WireModel dummy;
  sim::MessagePtr out;
  switch (type) {
    case MsgType::kApp: {
      const ObjectId object = r.u32();
      auto value = r.bytes(body);
      auto tag = r.tag(clock_cap);
      auto msg = std::make_unique<AppMessage>(object, std::move(value),
                                              std::move(tag), dummy);
      msg->wire = wire;
      out = std::move(msg);
      break;
    }
    case MsgType::kDel: {
      const ObjectId object = r.u32();
      const NodeId origin = r.u32();
      const bool forward = r.u8() != 0;
      auto tag = r.tag(clock_cap);
      auto msg = std::make_unique<DelMessage>(object, std::move(tag), origin,
                                              forward, dummy);
      msg->wire = wire;
      out = std::move(msg);
      break;
    }
    case MsgType::kValInq: {
      const ClientId client = r.u64();
      const OpId opid = r.u64();
      const ObjectId object = r.u32();
      auto wanted = r.tagvec(tag_cap, clock_cap);
      auto msg = std::make_unique<ValInqMessage>(client, opid, object,
                                                 std::move(wanted), dummy);
      msg->wire = wire;
      out = std::move(msg);
      break;
    }
    case MsgType::kValResp: {
      const ClientId client = r.u64();
      const OpId opid = r.u64();
      const ObjectId object = r.u32();
      auto value = r.bytes(body);
      auto requested = r.tagvec(tag_cap, clock_cap);
      auto msg = std::make_unique<ValRespMessage>(client, opid, object,
                                                  std::move(value),
                                                  std::move(requested),
                                                  dummy);
      msg->wire = wire;
      out = std::move(msg);
      break;
    }
    case MsgType::kValRespEncoded: {
      const ClientId client = r.u64();
      const OpId opid = r.u64();
      const ObjectId object = r.u32();
      auto symbol = r.bytes(body);
      auto symbol_tags = r.tagvec(tag_cap, clock_cap);
      auto requested = r.tagvec(tag_cap, clock_cap);
      auto msg = std::make_unique<ValRespEncodedMessage>(
          client, opid, object, std::move(symbol), std::move(symbol_tags),
          std::move(requested), dummy);
      msg->wire = wire;
      out = std::move(msg);
      break;
    }
    case MsgType::kRecoverDigest: {
      const std::uint64_t epoch = r.u64();
      auto vc = r.clock(clock_cap);
      auto msg = std::make_unique<RecoverDigestMessage>(epoch, std::move(vc),
                                                        dummy);
      msg->wire = wire;
      out = std::move(msg);
      break;
    }
    case MsgType::kRecoverDigestReply: {
      const std::uint64_t epoch = r.u64();
      auto vc = r.clock(clock_cap);
      auto msg = std::make_unique<RecoverDigestReplyMessage>(
          epoch, std::move(vc), dummy);
      msg->wire = wire;
      out = std::move(msg);
      break;
    }
    case MsgType::kRecoverPull: {
      const std::uint64_t epoch = r.u64();
      auto vc = r.clock(clock_cap);
      auto msg = std::make_unique<RecoverPullMessage>(epoch, std::move(vc),
                                                      dummy);
      msg->wire = wire;
      out = std::move(msg);
      break;
    }
    case MsgType::kRecoverPush: {
      const std::uint64_t epoch = r.u64();
      auto vc = r.clock(clock_cap);
      // Counts are validated against remaining bytes *before* they size the
      // vectors; on failure the reader is latched and the loops see zeroes.
      const auto checked_count = [&r](std::size_t min_item_bytes,
                                      const char* what) -> std::size_t {
        const std::uint32_t count = r.u32();
        if (count > r.remaining() / min_item_bytes) {
          r.fail(what);
          return 0;
        }
        return count;
      };
      std::vector<RecoverPushMessage::HistoryItem> history(checked_count(
          kMinHistoryItemBytes, "history count exceeds frame"));
      for (auto& h : history) {
        h.object = r.u32();
        h.tag = r.tag(clock_cap);
        h.value = r.bytes(body);
      }
      std::vector<RecoverPushMessage::InqueueItem> inqueue(checked_count(
          kMinInqueueItemBytes, "inqueue count exceeds frame"));
      for (auto& q : inqueue) {
        q.origin = r.u32();
        q.object = r.u32();
        q.tag = r.tag(clock_cap);
        q.value = r.bytes(body);
      }
      std::vector<RecoverPushMessage::DelItem> dels(checked_count(
          kMinDelItemBytes, "del count exceeds frame"));
      for (auto& d : dels) {
        d.object = r.u32();
        d.server = r.u32();
        d.tag = r.tag(clock_cap);
      }
      auto msg = std::make_unique<RecoverPushMessage>(
          epoch, std::move(vc), std::move(history), std::move(inqueue),
          std::move(dels), dummy);
      msg->wire = wire;
      out = std::move(msg);
      break;
    }
    default:
      r.fail("unknown message type byte");
      break;
  }
  // Trace-context trailer: present iff exactly 16 bytes follow the body.
  // Frames from before trace propagation (or untraced sends) end here and
  // decode to the default "not traced" context.
  if (r.ok() && r.remaining() == wire::kTraceContextBytes) {
    out->trace.trace_id = r.u64();
    out->trace.span_id = r.u64();
  }
  if (!r.done()) {
    if (error != nullptr) *error = r.ok() ? "trailing bytes" : r.error();
    return nullptr;
  }
  return out;
}

}  // namespace causalec
