// SessionRecorder: wraps a Client so every operation lands in a History
// with the metadata the checkers need.
#pragma once

#include <functional>

#include "causalec/client.h"
#include "consistency/history.h"

namespace causalec::consistency {

class SessionRecorder {
 public:
  /// `now` supplies the current simulated time (for latency bookkeeping).
  SessionRecorder(Client* client, History* history,
                  std::function<SimTime()> now)
      : client_(client), history_(history), now_(std::move(now)) {
    CEC_CHECK(client_ != nullptr && history_ != nullptr && now_ != nullptr);
  }

  Client& client() { return *client_; }
  bool busy() const { return client_->busy(); }

  Tag write(ObjectId object, erasure::Value value) {
    OpRecord record;
    record.client = client_->id();
    record.session_seq = seq_++;
    record.is_write = true;
    record.object = object;
    record.server = client_->server_id();
    record.value_hash = hash_value_bytes(value);
    record.invoked_at = now_();
    const Tag tag = client_->write(object, std::move(value));
    record.tag = tag;
    record.timestamp = tag.ts;
    record.responded_at = now_();
    history_->record(std::move(record));
    return tag;
  }

  /// Issues a read; the record is appended when the read completes.
  /// `done` (optional) fires after recording.
  void read(ObjectId object, std::function<void(const erasure::Value&,
                                                const Tag&)> done = {}) {
    OpRecord record;
    record.client = client_->id();
    record.session_seq = seq_++;
    record.is_write = false;
    record.object = object;
    record.server = client_->server_id();
    record.invoked_at = now_();
    client_->read(object, [this, record, done = std::move(done)](
                              const erasure::Value& value, const Tag& tag,
                              const VectorClock& ts) mutable {
      record.tag = tag;
      record.timestamp = ts;
      record.value_hash = hash_value_bytes(value);
      record.responded_at = now_();
      history_->record(std::move(record));
      if (done) done(value, tag);
    });
  }

 private:
  Client* client_;
  History* history_;
  std::function<SimTime()> now_;
  std::uint64_t seq_ = 0;
};

}  // namespace causalec::consistency
