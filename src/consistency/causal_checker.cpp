#include "consistency/causal_checker.h"

#include <map>
#include <sstream>

namespace causalec::consistency {

namespace {

std::string describe(const OpRecord& op) {
  std::ostringstream oss;
  oss << (op.is_write ? "write" : "read") << "(X" << op.object << ") by c"
      << op.client << "#" << op.session_seq << " @s" << op.server
      << " ts=" << op.timestamp << " tag=" << op.tag;
  return oss.str();
}

/// pi1 ~> pi2 per Definition 7 (restricted to the clauses that apply to
/// completed, timestamped operations).
bool visible_before(const OpRecord& a, const OpRecord& b) {
  if (a.timestamp.lt(b.timestamp)) return true;
  if (a.timestamp == b.timestamp) {
    if (a.is_write) return true;
    if (!a.is_write && !b.is_write && a.client == b.client &&
        a.session_seq < b.session_seq) {
      return true;
    }
  }
  if (a.is_write && b.is_write && a.tag < b.tag) return true;
  return false;
}

}  // namespace

CheckResult check_causal_consistency(const History& history) {
  CheckResult result;
  const auto& ops = history.ops();

  // Index the writes: tag -> record.
  std::map<Tag, const OpRecord*> writes;
  for (const auto& op : ops) {
    if (!op.is_write) continue;
    auto [it, inserted] = writes.try_emplace(op.tag, &op);
    if (!inserted) {
      result.fail("duplicate write tag: " + describe(op) + " vs " +
                  describe(*it->second));
    }
  }

  // 1b. Causal arbitration (Definition 5(b)): the total write order (tags)
  // must extend visibility among writes -- ts(w1) < ts(w2) => tag(w1) <
  // tag(w2).
  for (const auto& [tag1, w1] : writes) {
    for (const auto& [tag2, w2] : writes) {
      if (w1 == w2) continue;
      if (w1->timestamp.lt(w2->timestamp) && !(tag1 < tag2)) {
        result.fail("arbitration does not extend visibility: " +
                    describe(*w1) + " vs " + describe(*w2));
      }
    }
  }

  // 2. Session order implies visibility.
  std::map<ClientId, const OpRecord*> last_of_client;
  // (assumes history.ops() is recorded in completion order per client)
  for (const auto& op : ops) {
    auto it = last_of_client.find(op.client);
    if (it != last_of_client.end()) {
      const OpRecord& prev = *it->second;
      if (!visible_before(prev, op)) {
        result.fail("session order not respected: " + describe(prev) +
                    " then " + describe(op));
      }
    }
    last_of_client[op.client] = &op;
  }

  // 3. Last-writer-wins against the causal past; 4. value integrity.
  for (const auto& op : ops) {
    if (op.is_write) continue;
    // Largest-tag write to the object with ts(w) <= ts(op).
    Tag best = Tag::zero(op.timestamp.size());
    bool found = false;
    for (const auto& [tag, w] : writes) {
      if (w->object != op.object) continue;
      if (!w->timestamp.leq(op.timestamp)) continue;
      if (!found || best < tag) {
        best = tag;
        found = true;
      }
    }
    if (op.tag.is_zero()) {
      if (found) {
        result.fail("read returned the initial value but " +
                    describe(*writes.at(best)) + " is in its causal past: " +
                    describe(op));
      }
      continue;
    }
    auto it = writes.find(op.tag);
    if (it == writes.end()) {
      result.fail("read returned a tag no write produced: " + describe(op));
      continue;
    }
    const OpRecord& w = *it->second;
    if (w.object != op.object) {
      result.fail("read returned a write to a different object: " +
                  describe(op) + " got " + describe(w));
    }
    if (w.value_hash != op.value_hash) {
      result.fail("read returned bytes that differ from the write it "
                  "claims: " +
                  describe(op));
    }
    if (!found || !(op.tag == best)) {
      result.fail("read is not last-writer-wins: " + describe(op) +
                  " expected tag " + (found ? describe(*writes.at(best))
                                            : std::string("<initial>")));
    }
  }

  return result;
}

CheckResult check_session_guarantees(const History& history) {
  CheckResult result;
  struct PerObjectState {
    bool has_read = false;
    Tag last_read_tag;
    bool has_written = false;
    Tag last_write_tag;
  };
  std::map<ClientId, std::map<ObjectId, PerObjectState>> sessions;
  std::map<ClientId, Tag> last_write_any;
  // Largest non-zero tag any read of the session returned so far
  // (writes-follow-reads witness).
  std::map<ClientId, Tag> max_read_any;

  for (const auto& op : history.ops()) {
    auto& state = sessions[op.client][op.object];
    if (op.is_write) {
      // Monotonic writes.
      auto it = last_write_any.find(op.client);
      if (it != last_write_any.end() && !(it->second < op.tag)) {
        result.fail("monotonic writes violated: " + describe(op));
      }
      last_write_any[op.client] = op.tag;
      // Writes-follow-reads: the write must be arbitrated (tag-ordered)
      // after every write this session has read. Tags form the global
      // write order, so one per-session maximum suffices.
      auto rit = max_read_any.find(op.client);
      if (rit != max_read_any.end() && !(rit->second < op.tag)) {
        std::ostringstream oss;
        oss << "writes-follow-reads violated: " << describe(op)
            << " not arbitrated after previously read tag " << rit->second;
        result.fail(oss.str());
      }
      state.has_written = true;
      state.last_write_tag = op.tag;
    } else {
      // Monotonic reads (per object).
      if (state.has_read && op.tag < state.last_read_tag) {
        result.fail("monotonic reads violated: " + describe(op));
      }
      // Read-your-writes (per object).
      if (state.has_written && op.tag < state.last_write_tag) {
        result.fail("read-your-writes violated: " + describe(op));
      }
      state.has_read = true;
      state.last_read_tag = op.tag;
      if (!op.tag.is_zero()) {
        auto [rit, inserted] = max_read_any.try_emplace(op.client, op.tag);
        if (!inserted && rit->second < op.tag) rit->second = op.tag;
      }
    }
  }
  return result;
}

CheckResult check_convergence(const History& history,
                              const std::vector<OpRecord>& final_reads) {
  CheckResult result;
  std::map<ObjectId, Tag> winner;
  for (const auto& op : history.ops()) {
    if (!op.is_write) continue;
    auto [it, inserted] = winner.try_emplace(op.object, op.tag);
    if (!inserted && it->second < op.tag) it->second = op.tag;
  }
  for (const auto& read : final_reads) {
    CEC_CHECK(!read.is_write);
    auto it = winner.find(read.object);
    const bool expect_initial = it == winner.end();
    if (expect_initial) {
      if (!read.tag.is_zero()) {
        result.fail("final read of never-written object is not initial: " +
                    describe(read));
      }
    } else if (!(read.tag == it->second)) {
      result.fail("final read did not converge to the last write: " +
                  describe(read));
    }
  }
  return result;
}

}  // namespace causalec::consistency
