// Operation-history recording for consistency checking.
//
// Each completed operation is recorded with the metadata Definition 6
// assigns it: its timestamp (the server's vector clock at the response
// point), its tag (writes), and -- for reads -- the tag of the write whose
// value was returned. The checker then verifies Definition 5 against the
// witness orders of Definition 7.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "causalec/tag.h"
#include "common/types.h"

namespace causalec::consistency {

struct OpRecord {
  ClientId client = 0;
  std::uint64_t session_seq = 0;  // position within the client's session
  bool is_write = false;
  ObjectId object = 0;
  NodeId server = 0;
  /// ts(pi): the issuing server's vector clock at the response point.
  VectorClock timestamp;
  /// Writes: tag(pi). Reads: the tag of the write whose value was returned
  /// (zero tag = initial value).
  Tag tag;
  /// FNV-1a hash of the written / returned value bytes.
  std::uint64_t value_hash = 0;
  SimTime invoked_at = 0;
  SimTime responded_at = 0;
};

/// FNV-1a, for OpRecord::value_hash.
inline std::uint64_t hash_value_bytes(std::span<const std::uint8_t> v) {
  std::uint64_t h = 14695981039346656037ull;
  for (std::uint8_t b : v) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

class History {
 public:
  void record(OpRecord record) { ops_.push_back(std::move(record)); }
  const std::vector<OpRecord>& ops() const { return ops_; }
  std::size_t size() const { return ops_.size(); }
  void clear() { ops_.clear(); }

 private:
  std::vector<OpRecord> ops_;
};

}  // namespace causalec::consistency
