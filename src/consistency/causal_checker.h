// Checks executions against Definition 5 (causal + eventual consistency)
// using the witness orders of Definitions 6/7, plus the classical session
// guarantees (black-box checks that need no timestamps).
//
// The visibility witness: for a completed operation pi, ts(pi) is the
// issuing server's vector clock at the response point. Definition 7 yields
//   pi1 ~> pi2  iff  ts(pi1) < ts(pi2), or ts(pi1) == ts(pi2) with pi1 a
//                    write, or both reads of one client in session order.
// A read phi must return the value of the write with the largest tag among
// { w : ts(w) <= ts(phi) } (or the initial value if none).
#pragma once

#include <string>
#include <vector>

#include "consistency/history.h"

namespace causalec::consistency {

struct CheckResult {
  bool ok = true;
  std::vector<std::string> violations;

  void fail(std::string message) {
    ok = false;
    violations.push_back(std::move(message));
  }
};

/// Full causal-consistency check (Definition 5 via Definitions 6/7):
///   1. every write has a unique tag and timestamp (Lemma B.3);
///   2. session order implies visibility (Definition 5(a));
///   3. every read returns the largest-tag write in its causal past
///      (Definition 5(c), last-writer-wins);
///   4. reads return tags of writes to the same object (value integrity via
///      the recorded value hashes).
CheckResult check_causal_consistency(const History& history);

/// Session guarantees, checked black-box (no cross-client metadata):
/// monotonic reads, monotonic writes, read-your-writes, and
/// writes-follow-reads (a session's write must be arbitrated after every
/// write whose value the session previously read -- tags are the global
/// arbitration order, so the check spans objects).
CheckResult check_session_guarantees(const History& history);

/// Eventual visibility (Definition 5, second part): the reads in
/// `final_reads` (issued after all writes settled) must all return the
/// globally largest write tag of their object as recorded in `history`.
CheckResult check_convergence(const History& history,
                              const std::vector<OpRecord>& final_reads);

}  // namespace causalec::consistency
