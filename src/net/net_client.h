// NetClient: a blocking, one-request-at-a-time client connection to a
// causalec_server daemon. Each bench/test client thread owns one (the
// closed-loop driver model of bench_throughput --saturate); nothing here is
// thread-safe.
//
// Responses carry the serving node's vector clock at the response point, so
// a caller can record consistency-checkable OpRecords (see client_proto.h).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/types.h"
#include "erasure/value.h"
#include "net/client_proto.h"
#include "net/frame.h"
#include "net/socket.h"

namespace causalec::net {

class NetClient {
 public:
  explicit NetClient(ClientId client) : client_(client) {}

  /// Connects ("host:port") and sends the client Hello. False on failure.
  bool connect(const std::string& host_port, int timeout_ms = 5000);

  bool connected() const { return fd_.valid(); }
  ClientId client() const { return client_; }

  /// Per-request receive timeout; a request that times out (or hits any
  /// socket/framing error) returns nullopt and closes the connection.
  void set_io_timeout_ms(int ms) { io_timeout_ms_ = ms; }

  // Each call issues one request and blocks for its response. `opid` is a
  // caller-chosen correlation id echoed back by the daemon.
  std::optional<WriteResp> write(OpId opid, ObjectId object,
                                 erasure::Value value);
  std::optional<ReadResp> read(OpId opid, ObjectId object);
  std::optional<Pong> ping(std::uint64_t token);
  std::optional<StatsResp> stats();

 private:
  bool send_payload(const std::vector<std::uint8_t>& payload);
  /// The next complete payload frame, or nullopt on timeout/error.
  std::optional<erasure::Buffer> next_frame();
  void fail();

  ClientId client_;
  int io_timeout_ms_ = 10'000;
  ScopedFd fd_;
  FrameReader reader_;
};

}  // namespace causalec::net
