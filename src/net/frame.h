// Length-prefixed framing over the existing binary wire format.
//
// On a TCP stream every frame is `len:u32 (little-endian)` followed by
// `len` payload bytes. The payload's first byte disambiguates the two
// traffic classes that share a connection:
//   * bytes 1..9:  a CausalEC protocol frame (causalec/codec.h) -- the
//     exact bytes serialize_message produces, decoded with
//     try_deserialize_message because the peer is untrusted;
//   * bytes >= 64: a client/control message (net/client_proto.h).
//
// FrameReader turns an arbitrary sequence of read() chunks back into
// payload frames with zero-copy reassembly: a frame that lands entirely
// inside one chunk's arena is returned as a Buffer slice of that arena (no
// copy -- the refcount keeps the arena alive while the decoded message's
// payload views do); only a frame that spans chunks is assembled, exactly
// once, into an exact-size arena. The codec's zero-copy decode then slices
// whichever arena the frame ended up in, so a completed in-arena frame
// flows from the socket to HistoryList without a single payload copy.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>

#include "erasure/buffer.h"

namespace causalec::net {

/// Upper bound on one frame's payload. A hostile or corrupted length
/// prefix beyond this latches the reader into an error state (the
/// connection must be dropped) instead of driving a giant allocation.
inline constexpr std::size_t kMaxFrameBytes = std::size_t{64} << 20;

/// Frame header size: the u32 length prefix.
inline constexpr std::size_t kFrameHeaderBytes = 4;

/// One arena holding `header + payload`, ready to write to a socket.
erasure::Buffer encode_frame(std::span<const std::uint8_t> payload);

class FrameReader {
 public:
  /// Hand the reader the next chunk of stream bytes. The chunk is consumed
  /// incrementally as next() is called; completed frames inside it alias
  /// its arena.
  void feed(erasure::Buffer chunk);

  /// Convenience for tests: wraps raw bytes in a fresh arena.
  void feed_copy(std::span<const std::uint8_t> bytes) {
    feed(erasure::Buffer::copy_of(bytes));
  }

  /// The next complete payload frame, or nullopt when more bytes are
  /// needed (or the reader has failed).
  std::optional<erasure::Buffer> next();

  bool failed() const { return !error_.empty(); }
  const std::string& error() const { return error_; }

  /// Bytes buffered but not yet returned as frames (diagnostics/tests).
  std::size_t buffered_bytes() const;

 private:
  void fail(const char* what) {
    if (error_.empty()) error_ = what;
  }
  /// Pops up to `out.size()` bytes off the chunk queue into `out`;
  /// returns the number copied.
  std::size_t drain_into(std::span<std::uint8_t> out);

  std::deque<erasure::Buffer> chunks_;  // unconsumed stream suffix
  std::size_t front_pos_ = 0;           // consumed prefix of chunks_[0]

  // Current frame in progress. header_have_ < kFrameHeaderBytes means the
  // length prefix itself is still arriving; afterwards body_len_ is known.
  std::uint8_t header_[kFrameHeaderBytes] = {};
  std::size_t header_have_ = 0;
  std::size_t body_len_ = 0;
  // Spanning-frame assembly: exact-size arena being filled (empty when the
  // current frame has not needed assembly).
  std::vector<std::uint8_t> assembly_;
  bool assembling_ = false;

  std::string error_;
};

}  // namespace causalec::net
