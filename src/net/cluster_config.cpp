#include "net/cluster_config.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "erasure/codes.h"
#include "net/socket.h"

namespace causalec::net {

namespace {

constexpr const char* kMagic = "causalec-cluster-v1";

bool fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

/// Strict non-negative integer parse ("" and trailing junk are errors).
bool parse_size(const std::string& token, std::size_t* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t next = text.find(sep, pos);
    if (next == std::string::npos) {
      out.push_back(text.substr(pos));
      break;
    }
    out.push_back(text.substr(pos, next - pos));
    pos = next + 1;
  }
  return out;
}

}  // namespace

bool ClusterConfig::validate(std::string* error) const {
  if (num_servers == 0) return fail(error, "servers must be >= 1");
  if (num_objects == 0) return fail(error, "objects must be >= 1");
  if (value_bytes == 0) return fail(error, "value_bytes must be >= 1");
  if (endpoints.size() != num_servers) {
    return fail(error, "need exactly one node line per server (have " +
                           std::to_string(endpoints.size()) + " for " +
                           std::to_string(num_servers) + " servers)");
  }
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    if (!parse_host_port(endpoints[i]).has_value()) {
      return fail(error, "node " + std::to_string(i) + " has bad endpoint '" +
                             endpoints[i] + "'");
    }
  }
  if (!groups.empty()) {
    std::vector<bool> seen(num_servers, false);
    for (std::size_t g = 0; g < groups.size(); ++g) {
      if (groups[g].empty()) {
        return fail(error, "group " + std::to_string(g) + " is empty");
      }
      for (const NodeId node : groups[g]) {
        if (node >= num_servers) {
          return fail(error, "group " + std::to_string(g) +
                                 " names unknown node " +
                                 std::to_string(node));
        }
        if (seen[node]) {
          return fail(error, "node " + std::to_string(node) +
                                 " appears in more than one group");
        }
        seen[node] = true;
      }
    }
    for (std::size_t i = 0; i < num_servers; ++i) {
      if (!seen[i]) {
        return fail(error,
                    "node " + std::to_string(i) + " belongs to no group");
      }
    }
  }
  if (code != "rs" && code != "paper53") {
    return fail(error, "unknown code '" + code + "' (rs|paper53)");
  }
  if (code == "paper53" && (num_servers != 5 || num_objects != 3)) {
    return fail(error, "code paper53 requires servers=5 objects=3");
  }
  return true;
}

std::string ClusterConfig::serialize() const {
  std::ostringstream out;
  out << kMagic << "\n";
  out << "servers " << num_servers << "\n";
  out << "objects " << num_objects << "\n";
  out << "value_bytes " << value_bytes << "\n";
  out << "code " << code << "\n";
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    out << "node " << i << " " << endpoints[i] << "\n";
  }
  for (std::size_t g = 0; g < groups.size(); ++g) {
    out << "group " << g << " ";
    for (std::size_t j = 0; j < groups[g].size(); ++j) {
      if (j != 0) out << ",";
      out << groups[g][j];
    }
    out << "\n";
  }
  return out.str();
}

erasure::CodePtr ClusterConfig::make_code() const {
  std::string error;
  if (!validate(&error)) return nullptr;
  if (code == "paper53") return erasure::make_paper_5_3(value_bytes);
  return erasure::make_systematic_rs(num_servers, num_objects, value_bytes);
}

std::vector<std::vector<NodeId>> ClusterConfig::routing_groups() const {
  if (!groups.empty()) return groups;
  std::vector<std::vector<NodeId>> identity;
  identity.reserve(num_servers);
  for (std::size_t i = 0; i < num_servers; ++i) {
    identity.push_back({static_cast<NodeId>(i)});
  }
  return identity;
}

std::optional<ClusterConfig> parse_cluster_config(const std::string& text,
                                                  std::string* error) {
  ClusterConfig config;
  std::istringstream in(text);
  std::string line;
  bool saw_magic = false;
  // Node/group lines may arrive in any order; indexes are validated after
  // the sweep so a file with holes reports the hole, not a vector overrun.
  std::vector<std::pair<std::size_t, std::string>> nodes;
  std::vector<std::pair<std::size_t, std::vector<NodeId>>> groups;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Trim trailing carriage return (files edited on other platforms).
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    const auto bad = [&](const std::string& what) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": " + what;
      }
      return std::nullopt;
    };
    if (!saw_magic) {
      if (key != kMagic) {
        return bad(std::string("expected magic '") + kMagic + "'");
      }
      saw_magic = true;
      continue;
    }
    if (key == "servers" || key == "objects" || key == "value_bytes") {
      std::string value;
      fields >> value;
      std::size_t parsed = 0;
      if (!parse_size(value, &parsed)) return bad("bad " + key + " value");
      if (key == "servers") config.num_servers = parsed;
      if (key == "objects") config.num_objects = parsed;
      if (key == "value_bytes") config.value_bytes = parsed;
    } else if (key == "code") {
      fields >> config.code;
      if (config.code.empty()) return bad("bad code value");
    } else if (key == "node") {
      std::string index_str, endpoint;
      fields >> index_str >> endpoint;
      std::size_t index = 0;
      if (!parse_size(index_str, &index) || endpoint.empty()) {
        return bad("bad node line (want: node <id> <host:port>)");
      }
      nodes.emplace_back(index, endpoint);
    } else if (key == "group") {
      std::string index_str, members_str;
      fields >> index_str >> members_str;
      std::size_t index = 0;
      if (!parse_size(index_str, &index) || members_str.empty()) {
        return bad("bad group line (want: group <id> <node>,<node>,...)");
      }
      std::vector<NodeId> members;
      for (const std::string& token : split(members_str, ',')) {
        std::size_t node = 0;
        if (!parse_size(token, &node)) return bad("bad group member list");
        members.push_back(static_cast<NodeId>(node));
      }
      groups.emplace_back(index, std::move(members));
    } else {
      return bad("unknown key '" + key + "'");
    }
  }
  const auto fail_out = [&](const std::string& what) {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };
  if (!saw_magic) {
    return fail_out(std::string("missing magic '") + kMagic + "'");
  }
  config.endpoints.assign(config.num_servers, "");
  for (const auto& [index, endpoint] : nodes) {
    if (index >= config.num_servers) {
      return fail_out("node " + std::to_string(index) +
                      " out of range (servers " +
                      std::to_string(config.num_servers) + ")");
    }
    if (!config.endpoints[index].empty()) {
      return fail_out("duplicate node " + std::to_string(index));
    }
    config.endpoints[index] = endpoint;
  }
  for (std::size_t i = 0; i < config.endpoints.size(); ++i) {
    if (config.endpoints[i].empty()) {
      return fail_out("missing node line for node " + std::to_string(i));
    }
  }
  if (!groups.empty()) {
    config.groups.assign(groups.size(), {});
    for (auto& [index, members] : groups) {
      if (index >= config.groups.size()) {
        return fail_out("group ids must be dense 0.." +
                        std::to_string(config.groups.size() - 1));
      }
      if (!config.groups[index].empty()) {
        return fail_out("duplicate group " + std::to_string(index));
      }
      config.groups[index] = std::move(members);
    }
  }
  std::string validation;
  if (!config.validate(&validation)) return fail_out(validation);
  return config;
}

std::optional<ClusterConfig> load_cluster_config(const std::string& path,
                                                 std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_cluster_config(text.str(), error);
}

bool save_cluster_config(const ClusterConfig& config,
                         const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << config.serialize();
  return static_cast<bool>(out.flush());
}

}  // namespace causalec::net
