#include "net/net_transport.h"

#include <sys/epoll.h>

#include <chrono>

#include "causalec/codec.h"
#include "common/expect.h"
#include "common/logging.h"
#include "net/client_proto.h"
#include "net/frame.h"

namespace causalec::net {

namespace {

constexpr auto kReconnectDelay = std::chrono::milliseconds(100);

}  // namespace

PeerLink::PeerLink(EventLoop* loop, NodeId self, NodeId peer,
                   std::string host, std::uint16_t port,
                   std::function<void(NodeId, bool)> on_liveness)
    : loop_(loop),
      self_(self),
      peer_(peer),
      host_(std::move(host)),
      port_(port),
      on_liveness_(std::move(on_liveness)) {}

void PeerLink::start() {
  loop_->post([this] { dial(); });
}

void PeerLink::shutdown() {
  loop_->post([this] {
    shutdown_ = true;
    if (connecting_.valid()) {
      loop_->unwatch(connecting_.get());
      connecting_.reset();
    }
    if (conn_ != nullptr) {
      auto conn = std::move(conn_);
      conn_ = nullptr;
      conn->close();
    }
    pending_.clear();
  });
}

void PeerLink::send_frame(erasure::Buffer frame) {
  if (loop_->on_loop_thread()) {
    send_on_loop(std::move(frame));
    return;
  }
  loop_->post([this, frame = std::move(frame)]() mutable {
    send_on_loop(std::move(frame));
  });
}

void PeerLink::send_on_loop(erasure::Buffer frame) {
  if (shutdown_) return;
  if (conn_ != nullptr) {
    conn_->send(std::move(frame));
    return;
  }
  if (ever_established_) return;  // crash semantics: the frame is lost
  // Start-up grace: queue until the first establishment.
  if (pending_.size() >= kMaxPendingFrames) pending_.pop_front();
  pending_.push_back(std::move(frame));
}

void PeerLink::dial() {
  if (shutdown_ || conn_ != nullptr || connecting_.valid()) return;
  connecting_ = connect_tcp_nonblocking(host_, port_);
  if (!connecting_.valid()) {
    retry_later();
    return;
  }
  loop_->watch(connecting_.get(), /*want_read=*/false, /*want_write=*/true,
               [this](std::uint32_t events) { on_connect_ready(events); });
}

void PeerLink::on_connect_ready(std::uint32_t events) {
  loop_->unwatch(connecting_.get());
  ScopedFd fd = std::move(connecting_);
  if (shutdown_) return;
  if ((events & (EPOLLERR | EPOLLHUP)) != 0 ||
      take_socket_error(fd.get()) != 0) {
    retry_later();
    return;
  }
  conn_ = std::make_shared<Connection>(loop_, std::move(fd));
  conn_->open(
      // Outbound protocol links are send-only; anything the peer writes
      // back on one is a protocol violation we simply ignore.
      [](const std::shared_ptr<Connection>&, erasure::Buffer) {},
      [this](const std::shared_ptr<Connection>& dead) {
        if (conn_ == dead) on_lost();
      });
  on_established();
}

void PeerLink::on_established() {
  // Identify ourselves so the acceptor attributes our frames to node
  // self_ (the codec's frames carry no sender field; the channel does).
  Hello hello;
  hello.role = PeerRole::kServer;
  hello.node = self_;
  conn_->send(encode_frame(encode_hello(hello)));
  for (auto& frame : pending_) conn_->send(std::move(frame));
  pending_.clear();
  ever_established_ = true;
  if (down_reported_) {
    down_reported_ = false;
    on_liveness_(peer_, /*down=*/false);
  }
}

void PeerLink::on_lost() {
  conn_ = nullptr;
  if (shutdown_) return;
  if (!down_reported_) {
    down_reported_ = true;
    on_liveness_(peer_, /*down=*/true);
  }
  retry_later();
}

void PeerLink::retry_later() {
  if (shutdown_) return;
  loop_->schedule_after(kReconnectDelay, [this] { dial(); });
}

NetTransport::NetTransport(
    std::vector<PeerLink*> links,
    std::function<void(SimTime, std::function<void()>)> post_timer)
    : links_(std::move(links)), post_timer_(std::move(post_timer)) {}

void NetTransport::send(NodeId to, sim::MessagePtr message) {
  if (muted_) return;
  CEC_CHECK(to < links_.size() && links_[to] != nullptr);
  links_[to]->send_frame(
      encode_frame(causalec::serialize_message_frame(*message).span()));
}

void NetTransport::multicast(std::span<const NodeId> targets,
                             const std::function<sim::MessagePtr()>& make) {
  if (muted_ || targets.empty()) return;
  // Serialize once; every destination link queues the same frame arena.
  const sim::MessagePtr message = make();
  const erasure::Buffer frame =
      encode_frame(causalec::serialize_message_frame(*message).span());
  for (NodeId to : targets) {
    CEC_CHECK(to < links_.size() && links_[to] != nullptr);
    links_[to]->send_frame(frame);
  }
}

void NetTransport::schedule_after(SimTime delta, std::function<void()> fn) {
  post_timer_(delta, std::move(fn));
}

SimTime NetTransport::now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace causalec::net
