// Thin POSIX TCP helpers for the net layer: an RAII fd, non-blocking
// listen/connect/accept, and host:port parsing. Loopback and LAN TCP only;
// everything above this file speaks in terms of fds and byte spans.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace causalec::net {

/// Owns a file descriptor; closes it on destruction. Movable, not copyable.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() { reset(); }

  ScopedFd(ScopedFd&& other) noexcept : fd_(other.release()) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// "host:port" -> (host, port); nullopt on malformed input.
std::optional<std::pair<std::string, std::uint16_t>> parse_host_port(
    const std::string& spec);

/// O_NONBLOCK on/off; false on fcntl failure.
bool set_nonblocking(int fd, bool on = true);

/// TCP_NODELAY (the request/response paths are latency-bound, and frames
/// are written coalesced, so Nagle only adds delay).
bool set_nodelay(int fd);

/// Non-blocking listening socket bound to host:port. `reuseport` lets
/// several shards of one process bind the same port and have the kernel
/// load-balance incoming connections across them (the shard-per-core
/// accept model). Returns an invalid fd on failure with errno set.
ScopedFd listen_tcp(const std::string& host, std::uint16_t port,
                    bool reuseport, int backlog = 128);

/// The port a bound socket actually listens on (resolves port 0).
std::uint16_t local_port(int fd);

/// Start a non-blocking connect; the fd is connecting (or connected) on
/// return. Completion is signaled by EPOLLOUT; check take_socket_error().
ScopedFd connect_tcp_nonblocking(const std::string& host,
                                 std::uint16_t port);

/// Blocking connect with a timeout, for client tools and test fixtures.
ScopedFd connect_tcp_blocking(const std::string& host, std::uint16_t port,
                              int timeout_ms);

/// SO_ERROR fetch-and-clear; 0 means the socket is healthy.
int take_socket_error(int fd);

/// Non-blocking accept; invalid fd when no connection is pending.
ScopedFd accept_nonblocking(int listen_fd);

}  // namespace causalec::net
