// NetTransport: the Transport seam (causalec/server.h) over real TCP.
//
// Outbound topology: every daemon *dials* every peer and sends its protocol
// frames on its own outbound links only; accepted connections are
// receive-only for protocol traffic. This gives each ordered channel a
// single writer and makes "who is connected to whom" trivial to reason
// about after crashes.
//
// PeerLink is one such outbound link, owned by one event-loop shard. Its
// delivery semantics match the crash-stop channel model of the in-process
// runtimes:
//   * before the link is first established (cluster start-up), frames are
//     queued (bounded) so no protocol traffic is lost to boot-order races;
//   * after an established link is lost, frames are dropped -- exactly the
//     "crashed node loses its mailbox" behavior the rejoin protocol
//     (DESIGN.md §9) is built to repair -- and the automaton is told via
//     set_peer_down until the link re-establishes.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "causalec/server.h"
#include "erasure/buffer.h"
#include "net/connection.h"
#include "net/event_loop.h"

namespace causalec::net {

class PeerLink {
 public:
  /// `on_liveness(down)` fires on the loop thread at every established /
  /// lost transition (the daemon marshals it to set_peer_down).
  PeerLink(EventLoop* loop, NodeId self, NodeId peer, std::string host,
           std::uint16_t port,
           std::function<void(NodeId peer, bool down)> on_liveness);

  /// Begin dialing (posts to the loop; any thread).
  void start();
  /// Drop the connection and stop reconnecting (posts to the loop).
  void shutdown();

  /// Queue one ready-made frame (see delivery semantics above). Any
  /// thread; multicast callers pass the same Buffer to every link, so the
  /// arena is shared across all n-1 destinations.
  void send_frame(erasure::Buffer frame);

  NodeId peer() const { return peer_; }

  /// Frames queued while the link was never yet established are capped;
  /// beyond this the oldest are dropped (rejoin repairs the loss).
  static constexpr std::size_t kMaxPendingFrames = 4096;

 private:
  // All of the below runs on the loop thread.
  void dial();
  void on_connect_ready(std::uint32_t events);
  void on_established();
  void on_lost();
  void retry_later();
  void send_on_loop(erasure::Buffer frame);

  EventLoop* loop_;
  NodeId self_;
  NodeId peer_;
  std::string host_;
  std::uint16_t port_;
  std::function<void(NodeId, bool)> on_liveness_;

  ScopedFd connecting_;  // fd mid-connect (watched for EPOLLOUT)
  std::shared_ptr<Connection> conn_;
  std::deque<erasure::Buffer> pending_;  // pre-first-establishment queue
  bool ever_established_ = false;
  bool down_reported_ = false;
  bool shutdown_ = false;
};

/// Transport implementation handed to the Server automaton. send/multicast
/// serialize through the codec, wrap the bytes in one frame arena
/// (serialize once, share everywhere), and queue on the per-peer links.
/// schedule_after/now are delegated to the automaton thread's timer queue
/// (the Server only ever calls them from its own thread).
class NetTransport final : public causalec::Transport {
 public:
  /// `links[j]` is the link to node j (null at the self index).
  /// `post_timer` must enqueue the callback on the automaton thread.
  NetTransport(
      std::vector<PeerLink*> links,
      std::function<void(SimTime delta_ns, std::function<void()>)> post_timer);

  void send(NodeId to, sim::MessagePtr message) override;
  void multicast(std::span<const NodeId> targets,
                 const std::function<sim::MessagePtr()>& make) override;
  void schedule_after(SimTime delta, std::function<void()> fn) override;
  SimTime now() const override;

  /// Muted during WAL replay (restore_from_journal re-runs handlers whose
  /// sends already reached the network before the crash).
  void set_muted(bool muted) { muted_ = muted; }

 private:
  std::vector<PeerLink*> links_;
  std::function<void(SimTime, std::function<void()>)> post_timer_;
  bool muted_ = false;
};

}  // namespace causalec::net
