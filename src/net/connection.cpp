#include "net/connection.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "common/expect.h"

namespace causalec::net {

Connection::Connection(EventLoop* loop, ScopedFd fd)
    : loop_(loop), fd_(std::move(fd)) {}

void Connection::open(FrameHandler on_frame, CloseHandler on_close) {
  CEC_DCHECK(loop_->on_loop_thread());
  CEC_CHECK(fd_.valid());
  on_frame_ = std::move(on_frame);
  on_close_ = std::move(on_close);
  auto self = shared_from_this();
  loop_->watch(fd_.get(), /*want_read=*/true, /*want_write=*/false,
               [self](std::uint32_t events) { self->handle_events(events); });
}

void Connection::send(erasure::Buffer frame) {
  if (loop_->on_loop_thread()) {
    send_on_loop(std::move(frame));
    return;
  }
  auto self = shared_from_this();
  loop_->post([self, frame = std::move(frame)]() mutable {
    self->send_on_loop(std::move(frame));
  });
}

void Connection::close() {
  if (loop_->on_loop_thread()) {
    close_on_loop();
    return;
  }
  auto self = shared_from_this();
  loop_->post([self] { self->close_on_loop(); });
}

std::size_t Connection::write_backlog() const {
  std::size_t total = 0;
  for (const auto& b : write_queue_) total += b.size();
  return total - front_written_;
}

void Connection::send_on_loop(erasure::Buffer frame) {
  if (closed_ || frame.empty()) return;
  write_queue_.push_back(std::move(frame));
  if (!flush_writes()) return;
  if (!write_queue_.empty() && !want_write_) {
    want_write_ = true;
    loop_->update(fd_.get(), /*want_read=*/true, /*want_write=*/true);
  }
}

bool Connection::flush_writes() {
  while (!write_queue_.empty()) {
    const erasure::Buffer& front = write_queue_.front();
    const std::size_t remaining = front.size() - front_written_;
    const ssize_t n = ::send(fd_.get(), front.data() + front_written_,
                             remaining, MSG_NOSIGNAL);
    if (n > 0) {
      front_written_ += static_cast<std::size_t>(n);
      if (front_written_ == front.size()) {
        write_queue_.pop_front();
        front_written_ = 0;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    close_on_loop();
    return false;
  }
  if (want_write_) {
    want_write_ = false;
    loop_->update(fd_.get(), /*want_read=*/true, /*want_write=*/false);
  }
  return true;
}

void Connection::handle_events(std::uint32_t events) {
  if (closed_) return;
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    close_on_loop();
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    if (!flush_writes()) return;
  }
  if ((events & EPOLLIN) != 0) handle_readable();
}

void Connection::handle_readable() {
  // Drain the socket. Each chunk is a fresh arena; frames wholly inside it
  // are delivered as zero-copy slices by the FrameReader.
  while (!closed_) {
    std::vector<std::uint8_t> chunk(kReadChunkBytes);
    const ssize_t n = ::recv(fd_.get(), chunk.data(), chunk.size(), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      close_on_loop();
      return;
    }
    if (n == 0) {  // orderly peer shutdown
      close_on_loop();
      return;
    }
    const bool socket_drained = static_cast<std::size_t>(n) < chunk.size();
    chunk.resize(static_cast<std::size_t>(n));
    reader_.feed(erasure::Buffer::adopt(std::move(chunk)));
    auto self = shared_from_this();  // a frame handler may close us
    while (auto payload = reader_.next()) {
      on_frame_(self, std::move(*payload));
      if (closed_) return;
    }
    if (reader_.failed()) {
      // Framing violation (oversized length prefix): hostile or broken
      // peer; drop the connection rather than guess at resync.
      close_on_loop();
      return;
    }
    if (socket_drained) return;
  }
}

void Connection::close_on_loop() {
  if (closed_) return;
  closed_ = true;
  loop_->unwatch(fd_.get());
  fd_.reset();
  write_queue_.clear();
  // on_frame_ is deliberately left in place: close() may run from inside
  // it, and destroying an executing std::function is undefined behavior.
  // The closed_ flag guarantees it is never invoked again.
  if (on_close_) {
    auto self = shared_from_this();
    CloseHandler handler = std::move(on_close_);
    on_close_ = nullptr;
    handler(self);
  }
}

}  // namespace causalec::net
