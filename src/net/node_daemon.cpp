#include "net/node_daemon.h"

#include <algorithm>
#include <utility>

#include "causalec/codec.h"
#include "common/expect.h"
#include "common/logging.h"
#include "net/frame.h"
#include "net/socket.h"

namespace causalec::net {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

NodeDaemon::NodeDaemon(erasure::CodePtr code, NodeDaemonConfig config)
    : code_(std::move(code)), config_(std::move(config)) {
  const std::size_t n = code_->num_servers();
  CEC_CHECK(config_.node < n);
  CEC_CHECK(config_.shards >= 1);
  CEC_CHECK_MSG(config_.peers.size() == n,
                "peers list has " << config_.peers.size() << " entries for "
                                  << n << " servers");
  for (std::size_t i = 0; i < config_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->loop = std::make_unique<EventLoop>();
    shards_.push_back(std::move(shard));
  }
  link_ptrs_.assign(n, nullptr);
  for (NodeId peer = 0; peer < n; ++peer) {
    if (peer == config_.node) continue;
    const auto addr = parse_host_port(config_.peers[peer]);
    CEC_CHECK_MSG(addr.has_value(),
                  "bad peer address '" << config_.peers[peer] << "'");
    EventLoop* loop = shards_[peer % shards_.size()]->loop.get();
    links_.push_back(std::make_unique<PeerLink>(
        loop, config_.node, peer, addr->first, addr->second,
        [this](NodeId who, bool down) {
          // Loop thread -> automaton thread.
          post_task([this, who, down] { server_->set_peer_down(who, down); });
        }));
    link_ptrs_[peer] = links_.back().get();
  }
  transport_ = std::make_unique<NetTransport>(
      link_ptrs_, [this](SimTime delta_ns, std::function<void()> fn) {
        post_timer(delta_ns, std::move(fn));
      });
  server_ = std::make_unique<causalec::Server>(config_.node, code_,
                                               config_.server,
                                               transport_.get());
  // Seed the opid counter from wall-clock seconds (see header); the mask
  // keeps bit 63 clear past 2038.
  const auto secs = std::chrono::duration_cast<std::chrono::seconds>(
                        std::chrono::system_clock::now().time_since_epoch())
                        .count();
  opid_counter_ = (static_cast<OpId>(secs) & 0x7FFFFFFFu) << 32;
}

NodeDaemon::~NodeDaemon() { stop(); }

void NodeDaemon::start() {
  CEC_CHECK(!started_);
  started_ = true;
  // Bind shard 0 first to resolve an ephemeral port, then the remaining
  // shards onto the same port; all set SO_REUSEPORT before bind so the
  // kernel spreads accepted connections across the shard listeners.
  const bool reuseport = shards_.size() > 1;
  shards_[0]->listener =
      listen_tcp(config_.listen_host, config_.listen_port, reuseport);
  CEC_CHECK_MSG(shards_[0]->listener.valid(),
                "cannot listen on " << config_.listen_host << ":"
                                    << config_.listen_port);
  listen_port_ = local_port(shards_[0]->listener.get());
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    shards_[i]->listener =
        listen_tcp(config_.listen_host, listen_port_, /*reuseport=*/true);
    CEC_CHECK_MSG(shards_[i]->listener.valid(),
                  "cannot bind shard " << i << " listener on port "
                                       << listen_port_);
  }
  // Restore durable state before any IO thread exists: the replay runs on
  // this thread with the transport muted (replayed handlers re-run sends
  // that already reached the network before the crash).
  if (!config_.data_dir.empty()) {
    backend_ = std::make_unique<persist::DirBackend>(config_.data_dir);
    journal_ = std::make_unique<persist::Journal>(
        backend_.get(), "s" + std::to_string(config_.node));
    server_->attach_journal(journal_.get());
    const persist::RecoveredState recovered = journal_->load();
    if (recovered.image.has_value() || !recovered.wal.empty()) {
      recovered_ = true;
      transport_->set_muted(true);
      server_->restore_from_journal(recovered);
      // Checkpoint the replayed state so a second crash before the next
      // snapshot timer does not replay the whole WAL again.
      journal_->save_snapshot(server_->capture_image());
      transport_->set_muted(false);
      CEC_LOG(kInfo) << "net: node " << config_.node
                     << " restored durable state from " << config_.data_dir;
    }
  }
  for (auto& shard : shards_) shard->loop->start();
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    s->loop->post([this, s] {
      // Shard-local arena recycling for everything the loop thread
      // allocates (frame reassembly, response encoding). Installed once;
      // the loop thread's TLS reference keeps the core alive until join.
      s->pool.install();
      s->loop->watch(s->listener.get(), /*want_read=*/true,
                     /*want_write=*/false,
                     [this, s](std::uint32_t) { accept_ready(s); });
    });
  }
  automaton_ = std::thread([this] { run_automaton(); });
  for (auto& link : links_) link->start();
  // The rejoin digest goes out as the automaton's first real work; frames
  // to still-dialing peers queue in the PeerLink start-up grace window.
  if (recovered_) {
    post_task([this] { server_->begin_rejoin(); });
  }
  ready_.store(true, std::memory_order_release);
}

void NodeDaemon::stop() {
  if (!started_) return;
  ready_.store(false, std::memory_order_release);
  // IO first: once the loops are joined no new frames or tasks can arrive;
  // automaton sends to dead loops become no-op posts.
  for (auto& link : links_) link->shutdown();
  for (auto& shard : shards_) shard->loop->stop();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (automaton_.joinable()) automaton_.join();
  started_ = false;
}

void NodeDaemon::accept_ready(Shard* shard) {
  while (true) {
    ScopedFd fd = accept_nonblocking(shard->listener.get());
    if (!fd.valid()) return;
    auto conn = std::make_shared<Connection>(shard->loop.get(),
                                             std::move(fd));
    auto state = std::make_shared<InboundConn>();
    state->shard = shard;
    conn->open(
        [this, state](const std::shared_ptr<Connection>& c,
                      erasure::Buffer payload) {
          handle_inbound_frame(state, c, std::move(payload));
        },
        [](const std::shared_ptr<Connection>&) {});
  }
}

void NodeDaemon::handle_inbound_frame(
    const std::shared_ptr<InboundConn>& state,
    const std::shared_ptr<Connection>& conn, erasure::Buffer payload) {
  const std::optional<std::uint8_t> type = peek_type(payload);
  if (!type.has_value()) {
    conn->close();
    return;
  }
  if (!state->helloed) {
    const std::optional<Hello> hello = decode_hello(std::move(payload));
    if (!hello.has_value()) {
      CEC_LOG(kWarn) << "net: closing connection with malformed hello";
      conn->close();
      return;
    }
    if (hello->role == PeerRole::kServer &&
        (hello->node >= code_->num_servers() ||
         hello->node == config_.node)) {
      CEC_LOG(kWarn) << "net: closing peer connection claiming bogus node "
                     << hello->node;
      conn->close();
      return;
    }
    state->helloed = true;
    state->role = hello->role;
    state->peer_node = hello->node;
    return;
  }
  if (state->role == PeerRole::kServer) {
    if (*type < kClientProtoBase) {
      // A CausalEC protocol frame: attribute it to the channel's node and
      // hand the still-serialized bytes to the automaton (deserialization
      // happens there, aliasing this frame's arena).
      enqueue_frame(state->peer_node, std::move(payload));
      return;
    }
    CEC_LOG(kWarn) << "net: peer " << state->peer_node
                   << " sent a client frame on a protocol link; closing";
    conn->close();
    return;
  }
  // Client connection. Requests are validated here on the shard thread so
  // a hostile frame can never reach (and abort) the automaton.
  switch (static_cast<ClientMsgType>(*type)) {
    case ClientMsgType::kPing: {
      // Answered on the shard thread: readiness probing must work even
      // while the automaton is busy replaying a journal.
      const std::optional<Ping> ping = decode_ping(std::move(payload));
      if (!ping.has_value()) break;
      conn->send(encode_frame(encode_pong(Pong{ping->token, ready()})));
      return;
    }
    case ClientMsgType::kWriteReq: {
      std::optional<WriteReq> req = decode_write_req(std::move(payload));
      if (!req.has_value()) break;
      if (req->object >= code_->num_objects() ||
          req->value.size() != code_->value_bytes()) {
        break;
      }
      state->shard->client_ops.fetch_add(1, std::memory_order_relaxed);
      post_task([this, req = std::move(*req), conn]() mutable {
        handle_write_req(std::move(req), conn);
      });
      return;
    }
    case ClientMsgType::kReadReq: {
      const std::optional<ReadReq> req = decode_read_req(std::move(payload));
      if (!req.has_value()) break;
      if (req->object >= code_->num_objects()) break;
      state->shard->client_ops.fetch_add(1, std::memory_order_relaxed);
      post_task([this, req = *req, conn] { handle_read_req(req, conn); });
      return;
    }
    case ClientMsgType::kStatsReq: {
      if (!decode_stats_req(std::move(payload))) break;
      post_task([this, conn] { handle_stats_req(conn); });
      return;
    }
    case ClientMsgType::kRoutedWriteReq: {
      std::optional<RoutedWriteReq> req =
          decode_routed_write_req(std::move(payload));
      if (!req.has_value()) break;
      if (req->object >= code_->num_objects() ||
          req->value.size() != code_->value_bytes() ||
          (req->frontier.size() != 0 &&
           req->frontier.size() != code_->num_servers())) {
        break;
      }
      state->shard->client_ops.fetch_add(1, std::memory_order_relaxed);
      ParkedOp op;
      op.is_write = true;
      op.opid = req->opid;
      op.client = req->client;
      op.object = req->object;
      op.frontier = std::move(req->frontier);
      op.value = std::move(req->value);
      op.conn = conn;
      post_task([this, op = std::move(op)]() mutable {
        handle_routed_op(std::move(op));
      });
      return;
    }
    case ClientMsgType::kRoutedReadReq: {
      std::optional<RoutedReadReq> req =
          decode_routed_read_req(std::move(payload));
      if (!req.has_value()) break;
      if (req->object >= code_->num_objects() ||
          (req->frontier.size() != 0 &&
           req->frontier.size() != code_->num_servers())) {
        break;
      }
      state->shard->client_ops.fetch_add(1, std::memory_order_relaxed);
      ParkedOp op;
      op.is_write = false;
      op.opid = req->opid;
      op.client = req->client;
      op.object = req->object;
      op.frontier = std::move(req->frontier);
      op.conn = conn;
      post_task([this, op = std::move(op)]() mutable {
        handle_routed_op(std::move(op));
      });
      return;
    }
    default:
      break;
  }
  CEC_LOG(kWarn) << "net: closing client connection after malformed frame "
                    "(type "
                 << static_cast<int>(*type) << ")";
  conn->close();
}

void NodeDaemon::post_task(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    tasks_.push_back(std::move(task));
  }
  cv_.notify_all();
}

void NodeDaemon::enqueue_frame(NodeId from, erasure::Buffer frame) {
  {
    std::lock_guard<std::mutex> lock(inbox_mu_);
    inbox_.push_back(Inbound{from, std::move(frame)});
    inbox_ready_.store(true, std::memory_order_release);
  }
  // Empty lock_guard fences against the lost-wakeup race (see
  // runtime/threaded_cluster.cpp).
  { std::lock_guard<std::mutex> lock(mu_); }
  cv_.notify_all();
}

void NodeDaemon::post_timer(SimTime delta_ns, std::function<void()> fn) {
  // Only ever called from the automaton thread (all server execution is
  // marshalled there) or from start() while it is not yet running, so the
  // timer list needs no locking.
  timers_.push_back(
      {Clock::now() + std::chrono::nanoseconds(delta_ns), std::move(fn)});
}

OpId NodeDaemon::next_daemon_opid() { return opid_counter_++; }

void NodeDaemon::handle_write_req(WriteReq req,
                                  std::shared_ptr<Connection> conn) {
  const OpId opid = next_daemon_opid();
  const Tag tag =
      server_->client_write(req.client, opid, req.object,
                            std::move(req.value));
  WriteResp resp;
  resp.opid = req.opid;
  resp.tag = tag;
  resp.vc = server_->clock();
  conn->send(encode_frame(encode_write_resp(resp)));
}

void NodeDaemon::handle_read_req(ReadReq req,
                                 std::shared_ptr<Connection> conn) {
  const OpId opid = next_daemon_opid();
  server_->client_read(
      req.client, opid, req.object,
      // The callback fires on the automaton thread (possibly inline); a
      // connection that died meanwhile just drops the response.
      [conn = std::move(conn), client_opid = req.opid](
          const erasure::Value& value, const Tag& tag,
          const VectorClock& vc) {
        ReadResp resp;
        resp.opid = client_opid;
        resp.tag = tag;
        resp.vc = vc;
        resp.value = value;
        conn->send(encode_frame(encode_read_resp(resp)));
      });
}

bool NodeDaemon::frontier_satisfied(const VectorClock& frontier) const {
  if (frontier.size() == 0) return true;  // fresh session, no constraint
  return frontier.leq(server_->clock());
}

void NodeDaemon::handle_routed_op(ParkedOp op) {
  if (frontier_satisfied(op.frontier)) {
    serve_parked(std::move(op));
    return;
  }
  if (parked_.size() >= config_.max_parked) {
    // A full parking lot means either a hostile frontier flood or a badly
    // partitioned cluster; shed the new request rather than grow unbounded.
    CEC_LOG(kWarn) << "net: parked-op cap reached, shedding routed request";
    op.conn->close();
    return;
  }
  op.deadline = Clock::now() + config_.park_timeout;
  parked_.push_back(std::move(op));
}

void NodeDaemon::serve_parked(ParkedOp op) {
  // The clock now dominates the session frontier, so the response tag /
  // timestamp are guaranteed to extend the session's history: a write's
  // new tag strictly dominates the frontier on this node's component, and
  // a read's arbitration set contains every write the session has seen.
  if (op.is_write) {
    WriteReq req;
    req.opid = op.opid;
    req.client = op.client;
    req.object = op.object;
    req.value = std::move(op.value);
    handle_write_req(std::move(req), std::move(op.conn));
  } else {
    ReadReq req;
    req.opid = op.opid;
    req.client = op.client;
    req.object = op.object;
    handle_read_req(req, std::move(op.conn));
  }
}

void NodeDaemon::retry_parked() {
  if (parked_.empty()) return;
  const auto now = Clock::now();
  std::deque<ParkedOp> keep;
  while (!parked_.empty()) {
    ParkedOp op = std::move(parked_.front());
    parked_.pop_front();
    if (frontier_satisfied(op.frontier)) {
      serve_parked(std::move(op));
    } else if (op.deadline <= now) {
      // The frontier never materialized (dead peers, or a fabricated
      // clock): fail the op visibly instead of holding the slot forever.
      CEC_LOG(kWarn) << "net: routed request parked past its deadline";
      op.conn->close();
    } else {
      keep.push_back(std::move(op));
    }
  }
  parked_ = std::move(keep);
}

void NodeDaemon::handle_stats_req(std::shared_ptr<Connection> conn) {
  StatsResp s;
  s.node = config_.node;
  s.vc = server_->clock();
  const StorageStats st = server_->storage();
  s.history_entries = st.history_entries;
  s.inqueue_entries = st.inqueue_entries;
  s.readl_entries = st.readl_entries;
  const ServerCounters& c = server_->counters();
  s.writes = c.writes;
  s.reads = c.reads;
  s.error_events = c.error1_events + c.error2_events;
  s.recoveries = c.recoveries;
  s.shard_ops.reserve(shards_.size());
  for (const auto& shard : shards_) {
    s.shard_ops.push_back(shard->client_ops.load(std::memory_order_relaxed));
  }
  conn->send(encode_frame(encode_stats_resp(s)));
}

void NodeDaemon::run_automaton() {
  set_log_thread_node(static_cast<int>(config_.node));
  // Automaton-local arena recycling: deserialized payloads and re-encode
  // scratch all allocate on this thread, so one pool captures the daemon's
  // entire data-path allocation traffic.
  erasure::BufferPool buffer_pool;
  erasure::BufferPool::ScopedInstall pool_installed(buffer_pool);
  auto next_gc = Clock::now() + config_.gc_period;
  auto next_snapshot = Clock::now() + config_.snapshot_period;
  while (true) {
    std::deque<std::function<void()>> batch;
    std::vector<Inbound> inbound;
    {
      std::unique_lock<std::mutex> lock(mu_);
      auto deadline = next_gc;
      if (journal_ != nullptr) deadline = std::min(deadline, next_snapshot);
      for (const auto& timer : timers_) {
        deadline = std::min(deadline, timer.at);
      }
      cv_.wait_until(lock, deadline, [this] {
        return stop_ || !tasks_.empty() ||
               inbox_ready_.load(std::memory_order_acquire);
      });
      if (stop_) return;
      batch.swap(tasks_);
    }
    {
      std::lock_guard<std::mutex> lock(inbox_mu_);
      inbound.swap(inbox_);
      inbox_ready_.store(false, std::memory_order_release);
    }
    for (auto& task : batch) task();
    if (!inbound.empty()) {
      for (Inbound& in : inbound) {
        std::string error;
        sim::MessagePtr message =
            try_deserialize_message(std::move(in.frame), &error);
        if (message == nullptr) {
          // Remote bytes are untrusted: malformed protocol frames are
          // dropped, never fatal.
          CEC_LOG(kWarn) << "net: dropping malformed frame from node "
                         << in.from << ": " << error;
          continue;
        }
        server_->dispatch_message(in.from, std::move(message));
      }
      // One Apply/Encoding fixpoint for the whole batch.
      server_->run_internal_actions();
    }
    // The batch may have advanced the clock (applied writes, anti-entropy):
    // parked routed requests get one retry per loop iteration, and the
    // cv wait above never sleeps longer than gc_period, so the serve
    // latency after the frontier is reached is bounded by that period.
    retry_parked();
    const auto now = Clock::now();
    for (std::size_t i = 0; i < timers_.size();) {
      if (timers_[i].at <= now) {
        auto fn = std::move(timers_[i].fn);
        timers_.erase(timers_.begin() + static_cast<std::ptrdiff_t>(i));
        fn();
      } else {
        ++i;
      }
    }
    if (now >= next_gc) {
      server_->run_garbage_collection();
      next_gc = now + config_.gc_period;
    }
    if (journal_ != nullptr && now >= next_snapshot) {
      journal_->save_snapshot(server_->capture_image());
      next_snapshot = now + config_.snapshot_period;
    }
  }
}

}  // namespace causalec::net
