#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace causalec::net {

void ScopedFd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

std::optional<std::pair<std::string, std::uint16_t>> parse_host_port(
    const std::string& spec) {
  const auto colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= spec.size()) {
    return std::nullopt;
  }
  unsigned long port = 0;
  for (std::size_t i = colon + 1; i < spec.size(); ++i) {
    if (spec[i] < '0' || spec[i] > '9') return std::nullopt;
    port = port * 10 + static_cast<unsigned long>(spec[i] - '0');
    if (port > 65535) return std::nullopt;
  }
  return std::make_pair(spec.substr(0, colon),
                        static_cast<std::uint16_t>(port));
}

bool set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, want) == 0;
}

bool set_nodelay(int fd) {
  int one = 1;
  return ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) == 0;
}

namespace {

bool fill_addr(const std::string& host, std::uint16_t port,
               sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  return ::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) == 1;
}

}  // namespace

ScopedFd listen_tcp(const std::string& host, std::uint16_t port,
                    bool reuseport, int backlog) {
  sockaddr_in addr;
  if (!fill_addr(host, port, &addr)) {
    errno = EINVAL;
    return ScopedFd();
  }
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return ScopedFd();
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuseport) {
    if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one,
                     sizeof(one)) != 0) {
      return ScopedFd();
    }
  }
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd.get(), backlog) != 0 || !set_nonblocking(fd.get())) {
    return ScopedFd();
  }
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

ScopedFd connect_tcp_nonblocking(const std::string& host,
                                 std::uint16_t port) {
  sockaddr_in addr;
  if (!fill_addr(host, port, &addr)) {
    errno = EINVAL;
    return ScopedFd();
  }
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid() || !set_nonblocking(fd.get())) return ScopedFd();
  set_nodelay(fd.get());
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) != 0 &&
      errno != EINPROGRESS) {
    return ScopedFd();
  }
  return fd;
}

ScopedFd connect_tcp_blocking(const std::string& host, std::uint16_t port,
                              int timeout_ms) {
  ScopedFd fd = connect_tcp_nonblocking(host, port);
  if (!fd.valid()) return ScopedFd();
  pollfd pfd{fd.get(), POLLOUT, 0};
  const int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc <= 0 || take_socket_error(fd.get()) != 0) return ScopedFd();
  set_nonblocking(fd.get(), false);
  return fd;
}

int take_socket_error(int fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) return errno;
  return err;
}

ScopedFd accept_nonblocking(int listen_fd) {
  const int fd = ::accept4(listen_fd, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
  if (fd < 0) return ScopedFd();
  set_nodelay(fd);
  return ScopedFd(fd);
}

}  // namespace causalec::net
