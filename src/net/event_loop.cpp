#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>

#include "common/expect.h"

namespace causalec::net {

namespace {

std::uint32_t to_epoll(bool want_read, bool want_write) {
  std::uint32_t events = 0;
  if (want_read) events |= EPOLLIN;
  if (want_write) events |= EPOLLOUT;
  return events;
}

}  // namespace

EventLoop::EventLoop()
    : epoll_(::epoll_create1(EPOLL_CLOEXEC)),
      wakeup_(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)) {
  CEC_CHECK(epoll_.valid());
  CEC_CHECK(wakeup_.valid());
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wakeup_.get();
  CEC_CHECK(::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, wakeup_.get(), &ev) ==
            0);
}

EventLoop::~EventLoop() { stop(); }

void EventLoop::start() {
  CEC_CHECK(!thread_.joinable());
  thread_ = std::thread([this] { run(); });
}

void EventLoop::stop() {
  if (!thread_.joinable()) return;
  stopping_.store(true, std::memory_order_release);
  std::uint64_t one = 1;
  [[maybe_unused]] const auto n =
      ::write(wakeup_.get(), &one, sizeof(one));
  thread_.join();
}

void EventLoop::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    if (stopping_.load(std::memory_order_acquire)) return;
    posted_.push_back(std::move(fn));
  }
  std::uint64_t one = 1;
  [[maybe_unused]] const auto n =
      ::write(wakeup_.get(), &one, sizeof(one));
}

void EventLoop::watch(int fd, bool want_read, bool want_write,
                      FdHandler handler) {
  CEC_DCHECK(on_loop_thread());
  epoll_event ev{};
  ev.events = to_epoll(want_read, want_write);
  ev.data.fd = fd;
  CEC_CHECK_MSG(::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev) == 0,
                "epoll add failed: errno " << errno);
  handlers_[fd] = std::move(handler);
}

void EventLoop::update(int fd, bool want_read, bool want_write) {
  CEC_DCHECK(on_loop_thread());
  epoll_event ev{};
  ev.events = to_epoll(want_read, want_write);
  ev.data.fd = fd;
  CEC_CHECK_MSG(::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, fd, &ev) == 0,
                "epoll mod failed: errno " << errno);
}

void EventLoop::unwatch(int fd) {
  CEC_DCHECK(on_loop_thread());
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

void EventLoop::schedule_after(std::chrono::nanoseconds delta,
                               std::function<void()> fn) {
  CEC_DCHECK(on_loop_thread());
  timers_.push_back({std::chrono::steady_clock::now() + delta,
                     std::move(fn)});
}

void EventLoop::drain_wakeup() {
  std::uint64_t count = 0;
  while (::read(wakeup_.get(), &count, sizeof(count)) > 0) {
  }
}

int EventLoop::next_timeout_ms() const {
  if (timers_.empty()) return 500;  // periodic stop-flag check
  auto earliest = timers_[0].at;
  for (const auto& t : timers_) earliest = std::min(earliest, t.at);
  const auto delta = earliest - std::chrono::steady_clock::now();
  if (delta <= std::chrono::nanoseconds::zero()) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(delta).count() +
      1;
  return static_cast<int>(std::min<long long>(ms, 500));
}

void EventLoop::run() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n =
        ::epoll_wait(epoll_.get(), events, kMaxEvents, next_timeout_ms());
    if (n < 0 && errno != EINTR) break;
    // Posted tasks first: they include connection sends that should hit
    // the socket before we go back to sleep.
    std::deque<std::function<void()>> tasks;
    {
      std::lock_guard<std::mutex> lock(post_mu_);
      tasks.swap(posted_);
    }
    for (auto& task : tasks) task();
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wakeup_.get()) {
        drain_wakeup();
        continue;
      }
      // A handler may unwatch (or close) any fd, including its own --
      // re-look-up per event so a stale fd is skipped.
      const auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;
      // Copy the handler: the callback may unwatch itself, destroying the
      // map slot under its own feet.
      FdHandler handler = it->second;
      handler(events[i].events);
    }
    // Due timers.
    const auto now = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < timers_.size();) {
      if (timers_[i].at <= now) {
        auto fn = std::move(timers_[i].fn);
        timers_.erase(timers_.begin() + static_cast<std::ptrdiff_t>(i));
        fn();
      } else {
        ++i;
      }
    }
  }
}

}  // namespace causalec::net
