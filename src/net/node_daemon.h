// NodeDaemon: one CausalEC server automaton deployed on real sockets --
// the process core of the causalec_server tool, also embeddable in-process
// for tests (tests/net_loopback_test.cpp runs several under TSan).
//
// Thread model (DESIGN.md §11):
//   * `shards` event-loop threads, each owning a SO_REUSEPORT listener on
//     the same port (the kernel load-balances accepted connections across
//     shards) plus the outbound peer links assigned to it. Shard threads
//     do all socket IO and all frame reassembly/deserialization-adjacent
//     work that can happen off the automaton;
//   * one automaton thread hosting the single-threaded Server, fed by the
//     same two-lock swap-and-drain MPSC inbox as runtime/threaded_cluster
//     (batch dispatch + one Apply/Encoding fixpoint per batch), plus
//     wall-clock GC and snapshot timers.
//
// Durability: a non-empty data_dir attaches a persist::DirBackend journal;
// on start, existing durable state is restored with the transport muted
// and an anti-entropy rejoin round (DESIGN.md §9) is posted as the
// automaton's first task -- the digest frames queue on the still-dialing
// peer links, so SIGKILL + exec restart converges without coordination.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "causalec/config.h"
#include "causalec/server.h"
#include "erasure/arena_pool.h"
#include "erasure/code.h"
#include "net/client_proto.h"
#include "net/connection.h"
#include "net/event_loop.h"
#include "net/net_transport.h"
#include "persist/backend.h"
#include "persist/journal.h"

namespace causalec::net {

struct NodeDaemonConfig {
  NodeId node = 0;
  std::string listen_host = "127.0.0.1";
  /// 0 = ephemeral (shard 0 resolves it; see listen_port()).
  std::uint16_t listen_port = 0;
  /// host:port of every node, indexed by NodeId (the self entry is
  /// ignored). Size must equal the code's server count.
  std::vector<std::string> peers;
  /// Empty = no durability (crash-stop). Otherwise a directory for the
  /// persist::DirBackend journal of this node.
  std::string data_dir;
  std::size_t shards = 2;
  causalec::ServerConfig server;
  std::chrono::milliseconds gc_period{10};
  std::chrono::milliseconds snapshot_period{100};
  /// Routed requests whose frontier the clock does not yet dominate park on
  /// the automaton (DESIGN.md §12); the cap bounds what a hostile frontier
  /// can pin, and the timeout bounds how long (the connection is then
  /// closed, failing the op at the client).
  std::size_t max_parked = 1024;
  std::chrono::milliseconds park_timeout{5000};
};

class NodeDaemon {
 public:
  NodeDaemon(erasure::CodePtr code, NodeDaemonConfig config);
  ~NodeDaemon();

  NodeDaemon(const NodeDaemon&) = delete;
  NodeDaemon& operator=(const NodeDaemon&) = delete;

  /// Binds listeners, restores durable state if present, starts the shard
  /// loops + automaton thread, and begins dialing peers. Aborts on bind
  /// failure (a daemon that cannot listen has nothing to offer).
  void start();
  void stop();

  /// The resolved listening port (after start()).
  std::uint16_t listen_port() const { return listen_port_; }
  NodeId node() const { return config_.node; }
  /// True once start() completed (including any durable-state restore).
  bool ready() const { return ready_.load(std::memory_order_acquire); }
  /// True when start() restored pre-existing durable state.
  bool recovered() const { return recovered_; }

 private:
  struct Shard {
    std::unique_ptr<EventLoop> loop;
    ScopedFd listener;
    std::atomic<std::uint64_t> client_ops{0};
    /// Arena pool installed on this shard's loop thread (frame reassembly
    /// and response encoding allocate there). Outlives the loop: stop()
    /// joins loop threads before shards are destroyed.
    erasure::BufferPool pool;
  };

  /// Accepted-connection state (which kind of peer is on the other end).
  struct InboundConn {
    bool helloed = false;
    PeerRole role = PeerRole::kClient;
    NodeId peer_node = kNoNode;
    Shard* shard = nullptr;
  };

  /// One frame from a peer server, bound for the automaton inbox.
  struct Inbound {
    NodeId from;
    erasure::Buffer frame;
  };

  /// A routed request waiting for the server clock to reach its session
  /// frontier (automaton thread only). The automaton loop wakes at least
  /// every gc_period, so the retry latency after the clock advances is
  /// bounded by that period.
  struct ParkedOp {
    bool is_write = false;
    OpId opid = 0;  // client correlation id
    ClientId client = 0;
    ObjectId object = 0;
    VectorClock frontier;
    erasure::Value value;  // writes only
    std::shared_ptr<Connection> conn;
    std::chrono::steady_clock::time_point deadline;
  };

  // Shard-side plumbing (runs on shard loop threads).
  void accept_ready(Shard* shard);
  void handle_inbound_frame(const std::shared_ptr<InboundConn>& state,
                            const std::shared_ptr<Connection>& conn,
                            erasure::Buffer payload);

  // Automaton-side plumbing.
  void post_task(std::function<void()> task);
  void enqueue_frame(NodeId from, erasure::Buffer frame);
  void post_timer(SimTime delta_ns, std::function<void()> fn);
  void run_automaton();
  void handle_write_req(WriteReq req, std::shared_ptr<Connection> conn);
  void handle_read_req(ReadReq req, std::shared_ptr<Connection> conn);
  void handle_stats_req(std::shared_ptr<Connection> conn);
  void handle_routed_op(ParkedOp op);
  /// True when `frontier` (empty, or one entry per server) is dominated by
  /// the server clock -- the serve condition for routed requests.
  bool frontier_satisfied(const VectorClock& frontier) const;
  void serve_parked(ParkedOp op);
  /// Serves every parked op whose frontier the clock now dominates and
  /// fails (closes) the ones past their deadline.
  void retry_parked();
  OpId next_daemon_opid();

  erasure::CodePtr code_;
  NodeDaemonConfig config_;
  std::uint16_t listen_port_ = 0;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<PeerLink>> links_;
  std::vector<PeerLink*> link_ptrs_;  // indexed by NodeId; self = null
  std::unique_ptr<NetTransport> transport_;
  std::unique_ptr<causalec::Server> server_;

  std::unique_ptr<persist::DirBackend> backend_;
  std::unique_ptr<persist::Journal> journal_;
  bool recovered_ = false;

  // Automaton thread state (the threaded_cluster Node pattern).
  std::thread automaton_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool stop_ = false;
  std::mutex inbox_mu_;
  std::vector<Inbound> inbox_;
  std::atomic<bool> inbox_ready_{false};
  struct Timer {
    std::chrono::steady_clock::time_point at;
    std::function<void()> fn;
  };
  std::vector<Timer> timers_;  // automaton thread only (+ pre-start)
  std::deque<ParkedOp> parked_;  // automaton thread only

  std::atomic<bool> ready_{false};
  bool started_ = false;
  /// Daemon-assigned opids for client operations: seeded from wall-clock
  /// seconds so opids from before a process restart are never reused
  /// (stale responses in flight across the restart must miss the ReadL).
  /// Bit 63 stays clear -- that range is the server's internal-opid space.
  OpId opid_counter_ = 0;
};

}  // namespace causalec::net
