#include "net/frame.h"

#include <cstring>

namespace causalec::net {

erasure::Buffer encode_frame(std::span<const std::uint8_t> payload) {
  erasure::Buffer out =
      erasure::Buffer::alloc_uninit(kFrameHeaderBytes + payload.size());
  std::uint8_t* p = out.mutable_data();
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<std::uint8_t>(len >> (8 * i));
  }
  if (!payload.empty()) {
    std::memcpy(p + kFrameHeaderBytes, payload.data(), payload.size());
  }
  return out;
}

void FrameReader::feed(erasure::Buffer chunk) {
  if (failed() || chunk.empty()) return;
  chunks_.push_back(std::move(chunk));
}

std::size_t FrameReader::buffered_bytes() const {
  // Counts everything fed but not yet returned as a payload: unconsumed
  // chunk bytes plus whatever next() already drained into the header /
  // assembly staging (a partially received frame is still "buffered").
  std::size_t total = header_have_ + assembly_.size();
  for (const auto& c : chunks_) total += c.size();
  return total - front_pos_;
}

std::size_t FrameReader::drain_into(std::span<std::uint8_t> out) {
  std::size_t copied = 0;
  while (copied < out.size() && !chunks_.empty()) {
    const erasure::Buffer& front = chunks_.front();
    const std::size_t avail = front.size() - front_pos_;
    const std::size_t take = std::min(avail, out.size() - copied);
    std::memcpy(out.data() + copied, front.data() + front_pos_, take);
    copied += take;
    front_pos_ += take;
    if (front_pos_ == front.size()) {
      chunks_.pop_front();
      front_pos_ = 0;
    }
  }
  return copied;
}

std::optional<erasure::Buffer> FrameReader::next() {
  if (failed()) return std::nullopt;
  // Finish (or start) the length prefix. It is tiny, so copying it out of
  // the chunk queue is free; this is also what lets a prefix split across
  // two reads reassemble without special cases.
  if (header_have_ < kFrameHeaderBytes) {
    header_have_ += drain_into(
        std::span(header_ + header_have_, kFrameHeaderBytes - header_have_));
    if (header_have_ < kFrameHeaderBytes) return std::nullopt;
    body_len_ = 0;
    for (int i = 3; i >= 0; --i) {
      body_len_ = (body_len_ << 8) | header_[i];
    }
    if (body_len_ > kMaxFrameBytes) {
      fail("frame length exceeds kMaxFrameBytes");
      return std::nullopt;
    }
  }

  if (!assembling_) {
    // Fast path: the whole body sits inside the front chunk -- return a
    // zero-copy slice of its arena.
    if (!chunks_.empty() &&
        chunks_.front().size() - front_pos_ >= body_len_) {
      erasure::Buffer payload = chunks_.front().slice(front_pos_, body_len_);
      front_pos_ += body_len_;
      if (front_pos_ == chunks_.front().size()) {
        chunks_.pop_front();
        front_pos_ = 0;
      }
      header_have_ = 0;
      return payload;
    }
    // The body spans chunks (or has not fully arrived): fall back to the
    // one-copy assembly arena, sized exactly once.
    assembling_ = true;
    assembly_.clear();
    assembly_.reserve(body_len_);
  }

  // Append whatever is buffered to the assembly until the body is whole.
  while (assembly_.size() < body_len_) {
    const std::size_t want = body_len_ - assembly_.size();
    const std::size_t old = assembly_.size();
    assembly_.resize(old + want);
    const std::size_t got = drain_into(std::span(assembly_.data() + old, want));
    assembly_.resize(old + got);
    if (got == 0) return std::nullopt;  // need another feed()
  }
  assembling_ = false;
  header_have_ = 0;
  return erasure::Buffer::adopt(std::move(assembly_));
}

}  // namespace causalec::net
