// Non-blocking epoll event loop: one OS thread multiplexing sockets,
// cross-thread posted tasks (eventfd wakeup), and monotonic timers.
//
// One EventLoop is one *shard* of a causalec_server daemon: it owns a
// SO_REUSEPORT listening socket, every connection the kernel load-balanced
// onto it, and the outbound peer links assigned to it. All fd callbacks,
// timers, and posted tasks run on the loop thread, so per-connection state
// needs no locking; the only cross-thread surface is post().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "net/socket.h"

namespace causalec::net {

class EventLoop {
 public:
  using FdHandler = std::function<void(std::uint32_t epoll_events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  void start();
  /// Signals the loop to exit and joins its thread. Idempotent. Pending
  /// watches are dropped; owners close their fds through their own
  /// destructors.
  void stop();

  /// Run `fn` on the loop thread (any thread may call; runs inline later,
  /// never synchronously). Tasks posted after stop() are discarded.
  void post(std::function<void()> fn);

  /// Loop thread only: watch `fd` for readability/writability. The handler
  /// is kept until unwatch(); it receives the raw epoll event mask.
  void watch(int fd, bool want_read, bool want_write, FdHandler handler);
  void update(int fd, bool want_read, bool want_write);
  void unwatch(int fd);

  /// Loop thread only: run `fn` once after `delta`.
  void schedule_after(std::chrono::nanoseconds delta,
                      std::function<void()> fn);

  bool on_loop_thread() const {
    return std::this_thread::get_id() == thread_.get_id();
  }

 private:
  void run();
  void drain_wakeup();
  int next_timeout_ms() const;

  struct Timer {
    std::chrono::steady_clock::time_point at;
    std::function<void()> fn;
  };

  ScopedFd epoll_;
  ScopedFd wakeup_;  // eventfd
  std::thread thread_;
  std::atomic<bool> stopping_{false};

  std::mutex post_mu_;
  std::deque<std::function<void()>> posted_;

  // Loop-thread-only state.
  std::map<int, FdHandler> handlers_;
  std::vector<Timer> timers_;
};

}  // namespace causalec::net
