#include "net/net_client.h"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <vector>

namespace causalec::net {

bool NetClient::connect(const std::string& host_port, int timeout_ms) {
  const auto addr = parse_host_port(host_port);
  if (!addr.has_value()) return false;
  fd_ = connect_tcp_blocking(addr->first, addr->second, timeout_ms);
  if (!fd_.valid()) return false;
  Hello hello;
  hello.role = PeerRole::kClient;
  hello.node = 0;
  if (!send_payload(encode_hello(hello))) return false;
  return true;
}

std::optional<WriteResp> NetClient::write(OpId opid, ObjectId object,
                                          erasure::Value value) {
  WriteReq req;
  req.opid = opid;
  req.client = client_;
  req.object = object;
  req.value = std::move(value);
  if (!send_payload(encode_write_req(req))) return std::nullopt;
  auto frame = next_frame();
  if (!frame.has_value()) return std::nullopt;
  auto resp = decode_write_resp(std::move(*frame));
  if (!resp.has_value() || resp->opid != opid) {
    fail();
    return std::nullopt;
  }
  return resp;
}

std::optional<ReadResp> NetClient::read(OpId opid, ObjectId object) {
  ReadReq req;
  req.opid = opid;
  req.client = client_;
  req.object = object;
  if (!send_payload(encode_read_req(req))) return std::nullopt;
  auto frame = next_frame();
  if (!frame.has_value()) return std::nullopt;
  auto resp = decode_read_resp(std::move(*frame));
  if (!resp.has_value() || resp->opid != opid) {
    fail();
    return std::nullopt;
  }
  return resp;
}

std::optional<Pong> NetClient::ping(std::uint64_t token) {
  if (!send_payload(encode_ping(Ping{token}))) return std::nullopt;
  auto frame = next_frame();
  if (!frame.has_value()) return std::nullopt;
  auto resp = decode_pong(std::move(*frame));
  if (!resp.has_value() || resp->token != token) {
    fail();
    return std::nullopt;
  }
  return resp;
}

std::optional<StatsResp> NetClient::stats() {
  if (!send_payload(encode_stats_req())) return std::nullopt;
  auto frame = next_frame();
  if (!frame.has_value()) return std::nullopt;
  auto resp = decode_stats_resp(std::move(*frame));
  if (!resp.has_value()) {
    fail();
    return std::nullopt;
  }
  return resp;
}

bool NetClient::send_payload(const std::vector<std::uint8_t>& payload) {
  if (!fd_.valid()) return false;
  const erasure::Buffer frame = encode_frame(payload);
  std::size_t written = 0;
  while (written < frame.size()) {
    const auto n = ::send(fd_.get(), frame.data() + written,
                          frame.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail();
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<erasure::Buffer> NetClient::next_frame() {
  while (fd_.valid()) {
    if (auto payload = reader_.next(); payload.has_value()) {
      return payload;
    }
    if (reader_.failed()) {
      fail();
      return std::nullopt;
    }
    pollfd pfd{fd_.get(), POLLIN, 0};
    const int ready = ::poll(&pfd, 1, io_timeout_ms_);
    if (ready <= 0) {
      if (ready < 0 && errno == EINTR) continue;
      fail();  // timeout or poll error
      return std::nullopt;
    }
    std::vector<std::uint8_t> chunk(64 * 1024);
    const auto n = ::recv(fd_.get(), chunk.data(), chunk.size(), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      fail();  // peer closed or error
      return std::nullopt;
    }
    chunk.resize(static_cast<std::size_t>(n));
    reader_.feed(erasure::Buffer::adopt(std::move(chunk)));
  }
  return std::nullopt;
}

void NetClient::fail() { fd_.reset(); }

}  // namespace causalec::net
