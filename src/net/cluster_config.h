// Cluster config file: the single deployment descriptor shared by
// causalec_server, causalec_client, and causalec_router (replacing the
// per-flag `--peers` csv of the first real-socket deployment, so the same
// file can describe a multi-machine cluster once and be handed to every
// process).
//
// Line-based text format, version-tagged by the first line:
//
//   causalec-cluster-v1
//   # comments and blank lines are ignored
//   servers 5
//   objects 3
//   value_bytes 64
//   code rs
//   node 0 127.0.0.1:7400
//   node 1 127.0.0.1:7401
//   ...
//   group 0 0,1        # optional routing groups (frontdoor tier);
//   group 1 2,3,4      # defaults to one group per node when absent
//
// `node` lines must cover exactly 0..servers-1. `group` lines, when
// present, must cover every node exactly once; the front-door router hashes
// keys onto groups and picks a live node inside the owning group.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "erasure/code.h"

namespace causalec::net {

struct ClusterConfig {
  std::size_t num_servers = 0;
  std::size_t num_objects = 3;
  std::size_t value_bytes = 64;
  /// Code family: "rs" (systematic Reed-Solomon) or "paper53".
  std::string code = "rs";
  /// "host:port" per node, indexed by NodeId.
  std::vector<std::string> endpoints;
  /// Routing groups (each a set of NodeIds); empty = one group per node.
  std::vector<std::vector<NodeId>> groups;

  /// Structural validation: counts match, endpoints parse, groups (if any)
  /// partition the node set. False with a message in *error.
  bool validate(std::string* error) const;

  /// The canonical text form (parse(serialize()) round-trips).
  std::string serialize() const;

  /// The erasure code this cluster runs, or nullptr for an unknown `code`
  /// name or invalid shape.
  erasure::CodePtr make_code() const;

  /// The groups to route over: `groups` when present, otherwise the
  /// one-group-per-node identity layout.
  std::vector<std::vector<NodeId>> routing_groups() const;
};

/// Parses the text form. nullopt with a message in *error on any syntax or
/// validation failure (the input may come from an untrusted file).
std::optional<ClusterConfig> parse_cluster_config(const std::string& text,
                                                  std::string* error);

/// Reads and parses `path`. nullopt with a message in *error on failure.
std::optional<ClusterConfig> load_cluster_config(const std::string& path,
                                                 std::string* error);

/// Writes the canonical text form to `path`. False on IO failure.
bool save_cluster_config(const ClusterConfig& config, const std::string& path);

}  // namespace causalec::net
