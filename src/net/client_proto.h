// Client/control messages that share a framed connection with the CausalEC
// protocol frames. Encoded with the same wire primitives (wire::Writer /
// wire::SafeReader); distinguished from protocol frames by the type byte:
// protocol messages use 1..9 (causalec/codec.cpp), these use 64+.
//
//   hello       := 64 role:u8 node:u32          (first frame on every conn)
//   write_req   := 65 opid:u64 client:u64 object:u32 value
//   read_req    := 66 opid:u64 client:u64 object:u32
//   ping        := 67 token:u64
//   stats_req   := 68
//   write_resp  := 69 opid:u64 tag vc
//   read_resp   := 70 opid:u64 tag vc value
//   pong        := 71 token:u64 ready:u8
//   stats_resp  := 72 node:u32 vc history:u64 inqueue:u64 readl:u64
//                  writes:u64 reads:u64 errors:u64 recoveries:u64
//                  shards:u32 shard_ops:u64[shards]
//
// Responses carry the issuing server's vector clock at the response point,
// which is exactly the timestamp the consistency checkers (Definition 6)
// need -- a remote client can therefore record checkable OpRecords.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "causalec/tag.h"
#include "common/types.h"
#include "erasure/buffer.h"
#include "erasure/value.h"

namespace causalec::net {

/// First type byte of the client/control range; payload first bytes below
/// this are CausalEC protocol frames.
inline constexpr std::uint8_t kClientProtoBase = 64;

enum class ClientMsgType : std::uint8_t {
  kHello = 64,
  kWriteReq = 65,
  kReadReq = 66,
  kPing = 67,
  kStatsReq = 68,
  kWriteResp = 69,
  kReadResp = 70,
  kPong = 71,
  kStatsResp = 72,
};

enum class PeerRole : std::uint8_t { kServer = 0, kClient = 1 };

struct Hello {
  PeerRole role = PeerRole::kClient;
  NodeId node = 0;  // server id for kServer; informational for kClient
};

struct WriteReq {
  OpId opid = 0;  // client correlation id, echoed in the response
  ClientId client = 0;
  ObjectId object = 0;
  erasure::Value value;
};

struct ReadReq {
  OpId opid = 0;
  ClientId client = 0;
  ObjectId object = 0;
};

struct Ping {
  std::uint64_t token = 0;
};

struct WriteResp {
  OpId opid = 0;
  Tag tag;
  VectorClock vc;
};

struct ReadResp {
  OpId opid = 0;
  Tag tag;
  VectorClock vc;
  erasure::Value value;
};

struct Pong {
  std::uint64_t token = 0;
  bool ready = false;
};

struct StatsResp {
  NodeId node = 0;
  VectorClock vc;
  std::uint64_t history_entries = 0;
  std::uint64_t inqueue_entries = 0;
  std::uint64_t readl_entries = 0;
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t error_events = 0;  // error1 + error2 (must stay 0)
  std::uint64_t recoveries = 0;
  /// Client operations handled per shard since process start.
  std::vector<std::uint64_t> shard_ops;
};

/// The type byte of a payload frame, or nullopt when empty.
std::optional<std::uint8_t> peek_type(const erasure::Buffer& payload);

// Encoders produce the *payload* (no length prefix; see net/frame.h).
std::vector<std::uint8_t> encode_hello(const Hello& m);
std::vector<std::uint8_t> encode_write_req(const WriteReq& m);
std::vector<std::uint8_t> encode_read_req(const ReadReq& m);
std::vector<std::uint8_t> encode_ping(const Ping& m);
std::vector<std::uint8_t> encode_stats_req();
std::vector<std::uint8_t> encode_write_resp(const WriteResp& m);
std::vector<std::uint8_t> encode_read_resp(const ReadResp& m);
std::vector<std::uint8_t> encode_pong(const Pong& m);
std::vector<std::uint8_t> encode_stats_resp(const StatsResp& m);

// Decoders: nullopt on malformed input (wrong type byte, truncation,
// hostile length fields) -- never abort; remote bytes are untrusted.
std::optional<Hello> decode_hello(erasure::Buffer payload);
std::optional<WriteReq> decode_write_req(erasure::Buffer payload);
std::optional<ReadReq> decode_read_req(erasure::Buffer payload);
std::optional<Ping> decode_ping(erasure::Buffer payload);
bool decode_stats_req(erasure::Buffer payload);
std::optional<WriteResp> decode_write_resp(erasure::Buffer payload);
std::optional<ReadResp> decode_read_resp(erasure::Buffer payload);
std::optional<Pong> decode_pong(erasure::Buffer payload);
std::optional<StatsResp> decode_stats_resp(erasure::Buffer payload);

}  // namespace causalec::net
