// Client/control messages that share a framed connection with the CausalEC
// protocol frames. Encoded with the same wire primitives (wire::Writer /
// wire::SafeReader); distinguished from protocol frames by the type byte:
// protocol messages use 1..9 (causalec/codec.cpp), these use 64+.
//
//   hello       := 64 role:u8 node:u32          (first frame on every conn)
//   write_req   := 65 opid:u64 client:u64 object:u32 value
//   read_req    := 66 opid:u64 client:u64 object:u32
//   ping        := 67 token:u64
//   stats_req   := 68
//   write_resp  := 69 opid:u64 tag vc
//   read_resp   := 70 opid:u64 tag vc value
//   pong        := 71 token:u64 ready:u8
//   stats_resp  := 72 node:u32 vc history:u64 inqueue:u64 readl:u64
//                  writes:u64 reads:u64 errors:u64 recoveries:u64
//                  shards:u32 shard_ops:u64[shards]
//
// The front-door tier (src/frontdoor, DESIGN.md §12) adds routed variants
// that carry the client session's causal frontier -- the merge of every
// response vector clock the session has seen. A server receiving a routed
// request parks it until its own clock dominates the frontier, so a session
// hopping across routers/backends keeps its guarantees; the router's edge
// cache serves a cached read only when frontier <= entry clock:
//
//   routed_write_req  := 73 opid:u64 client:u64 object:u32 frontier value
//   routed_read_req   := 74 opid:u64 client:u64 object:u32 frontier
//   routed_read_resp  := 75 opid:u64 tag vc cached:u8 value
//   router_stats_req  := 76
//   router_stats_resp := 77 (counter block; see RouterStatsResp)
//
// Routed writes are answered with the plain write_resp; routed reads with
// routed_read_resp so the client can tell cache hits from fall-throughs.
//
// Responses carry the issuing server's vector clock at the response point,
// which is exactly the timestamp the consistency checkers (Definition 6)
// need -- a remote client can therefore record checkable OpRecords.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "causalec/tag.h"
#include "common/types.h"
#include "erasure/buffer.h"
#include "erasure/value.h"

namespace causalec::net {

/// First type byte of the client/control range; payload first bytes below
/// this are CausalEC protocol frames.
inline constexpr std::uint8_t kClientProtoBase = 64;

enum class ClientMsgType : std::uint8_t {
  kHello = 64,
  kWriteReq = 65,
  kReadReq = 66,
  kPing = 67,
  kStatsReq = 68,
  kWriteResp = 69,
  kReadResp = 70,
  kPong = 71,
  kStatsResp = 72,
  kRoutedWriteReq = 73,
  kRoutedReadReq = 74,
  kRoutedReadResp = 75,
  kRouterStatsReq = 76,
  kRouterStatsResp = 77,
};

enum class PeerRole : std::uint8_t { kServer = 0, kClient = 1 };

struct Hello {
  PeerRole role = PeerRole::kClient;
  NodeId node = 0;  // server id for kServer; informational for kClient
};

struct WriteReq {
  OpId opid = 0;  // client correlation id, echoed in the response
  ClientId client = 0;
  ObjectId object = 0;
  erasure::Value value;
};

struct ReadReq {
  OpId opid = 0;
  ClientId client = 0;
  ObjectId object = 0;
};

struct Ping {
  std::uint64_t token = 0;
};

struct WriteResp {
  OpId opid = 0;
  Tag tag;
  VectorClock vc;
};

struct ReadResp {
  OpId opid = 0;
  Tag tag;
  VectorClock vc;
  erasure::Value value;
};

struct Pong {
  std::uint64_t token = 0;
  bool ready = false;
};

struct StatsResp {
  NodeId node = 0;
  VectorClock vc;
  std::uint64_t history_entries = 0;
  std::uint64_t inqueue_entries = 0;
  std::uint64_t readl_entries = 0;
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t error_events = 0;  // error1 + error2 (must stay 0)
  std::uint64_t recoveries = 0;
  /// Client operations handled per shard since process start.
  std::vector<std::uint64_t> shard_ops;
};

struct RoutedWriteReq {
  OpId opid = 0;
  ClientId client = 0;
  ObjectId object = 0;
  /// The session's causal frontier: empty (a fresh session) or one entry
  /// per server. The serving node parks the request until its clock
  /// dominates it.
  VectorClock frontier;
  erasure::Value value;
};

struct RoutedReadReq {
  OpId opid = 0;
  ClientId client = 0;
  ObjectId object = 0;
  VectorClock frontier;
};

struct RoutedReadResp {
  OpId opid = 0;
  Tag tag;
  VectorClock vc;
  /// True when the router answered from its edge cache without touching a
  /// backend (per-tier latency attribution in bench_frontdoor).
  bool cached = false;
  erasure::Value value;
};

/// Front-door tier counters since router start (DESIGN.md §12). Cache
/// outcomes partition routed reads: hits serve locally; misses, stale
/// rejections (frontier ahead of the entry), and TTL expiries all fall
/// through to a backend.
struct RouterStatsResp {
  std::uint64_t routed_writes = 0;
  std::uint64_t routed_reads = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_stale = 0;
  std::uint64_t cache_expired = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_entries = 0;
  std::uint64_t fallthroughs = 0;
  /// Requests sent somewhere other than the ring owner's first choice
  /// because a backend link was down.
  std::uint64_t reroutes = 0;
  /// Backend link up/down transitions (each changes effective ownership).
  std::uint64_t ring_remaps = 0;
  /// Requests forwarded per backend node since router start.
  std::vector<std::uint64_t> backend_ops;
};

/// The type byte of a payload frame, or nullopt when empty.
std::optional<std::uint8_t> peek_type(const erasure::Buffer& payload);

// Encoders produce the *payload* (no length prefix; see net/frame.h).
std::vector<std::uint8_t> encode_hello(const Hello& m);
std::vector<std::uint8_t> encode_write_req(const WriteReq& m);
std::vector<std::uint8_t> encode_read_req(const ReadReq& m);
std::vector<std::uint8_t> encode_ping(const Ping& m);
std::vector<std::uint8_t> encode_stats_req();
std::vector<std::uint8_t> encode_write_resp(const WriteResp& m);
std::vector<std::uint8_t> encode_read_resp(const ReadResp& m);
std::vector<std::uint8_t> encode_pong(const Pong& m);
std::vector<std::uint8_t> encode_stats_resp(const StatsResp& m);
std::vector<std::uint8_t> encode_routed_write_req(const RoutedWriteReq& m);
std::vector<std::uint8_t> encode_routed_read_req(const RoutedReadReq& m);
std::vector<std::uint8_t> encode_routed_read_resp(const RoutedReadResp& m);
std::vector<std::uint8_t> encode_router_stats_req();
std::vector<std::uint8_t> encode_router_stats_resp(const RouterStatsResp& m);

// Decoders: nullopt on malformed input (wrong type byte, truncation,
// hostile length fields) -- never abort; remote bytes are untrusted.
std::optional<Hello> decode_hello(erasure::Buffer payload);
std::optional<WriteReq> decode_write_req(erasure::Buffer payload);
std::optional<ReadReq> decode_read_req(erasure::Buffer payload);
std::optional<Ping> decode_ping(erasure::Buffer payload);
bool decode_stats_req(erasure::Buffer payload);
std::optional<WriteResp> decode_write_resp(erasure::Buffer payload);
std::optional<ReadResp> decode_read_resp(erasure::Buffer payload);
std::optional<Pong> decode_pong(erasure::Buffer payload);
std::optional<StatsResp> decode_stats_resp(erasure::Buffer payload);
std::optional<RoutedWriteReq> decode_routed_write_req(erasure::Buffer payload);
std::optional<RoutedReadReq> decode_routed_read_req(erasure::Buffer payload);
std::optional<RoutedReadResp> decode_routed_read_resp(erasure::Buffer payload);
bool decode_router_stats_req(erasure::Buffer payload);
std::optional<RouterStatsResp> decode_router_stats_resp(
    erasure::Buffer payload);

}  // namespace causalec::net
