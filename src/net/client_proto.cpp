#include "net/client_proto.h"

#include "causalec/wire_format.h"

namespace causalec::net {

namespace {

using wire::SafeReader;
using wire::Writer;

/// Per-frame caps derived from the bytes present, mirroring codec.cpp: a
/// corrupted count can never size an allocation beyond the frame itself.
std::size_t clock_cap(const SafeReader& r) { return r.remaining() / 8; }

/// Opens a reader and consumes the expected type byte; the reader is
/// latched failed on mismatch.
SafeReader open(erasure::Buffer payload, ClientMsgType expected) {
  SafeReader r(std::move(payload));
  if (r.u8() != static_cast<std::uint8_t>(expected)) {
    r.fail("unexpected message type byte");
  }
  return r;
}

}  // namespace

std::optional<std::uint8_t> peek_type(const erasure::Buffer& payload) {
  if (payload.empty()) return std::nullopt;
  return payload.data()[0];
}

std::vector<std::uint8_t> encode_hello(const Hello& m) {
  Writer w(8);
  w.u8(static_cast<std::uint8_t>(ClientMsgType::kHello));
  w.u8(static_cast<std::uint8_t>(m.role));
  w.u32(m.node);
  return w.take();
}

std::vector<std::uint8_t> encode_write_req(const WriteReq& m) {
  Writer w(32 + m.value.size());
  w.u8(static_cast<std::uint8_t>(ClientMsgType::kWriteReq));
  w.u64(m.opid);
  w.u64(m.client);
  w.u32(m.object);
  w.bytes(m.value);
  return w.take();
}

std::vector<std::uint8_t> encode_read_req(const ReadReq& m) {
  Writer w(24);
  w.u8(static_cast<std::uint8_t>(ClientMsgType::kReadReq));
  w.u64(m.opid);
  w.u64(m.client);
  w.u32(m.object);
  return w.take();
}

std::vector<std::uint8_t> encode_ping(const Ping& m) {
  Writer w(12);
  w.u8(static_cast<std::uint8_t>(ClientMsgType::kPing));
  w.u64(m.token);
  return w.take();
}

std::vector<std::uint8_t> encode_stats_req() {
  Writer w(1);
  w.u8(static_cast<std::uint8_t>(ClientMsgType::kStatsReq));
  return w.take();
}

std::vector<std::uint8_t> encode_write_resp(const WriteResp& m) {
  Writer w(32 + 8 * (m.vc.size() + m.tag.ts.size()));
  w.u8(static_cast<std::uint8_t>(ClientMsgType::kWriteResp));
  w.u64(m.opid);
  w.tag(m.tag);
  w.clock(m.vc);
  return w.take();
}

std::vector<std::uint8_t> encode_read_resp(const ReadResp& m) {
  Writer w(40 + 8 * (m.vc.size() + m.tag.ts.size()) + m.value.size());
  w.u8(static_cast<std::uint8_t>(ClientMsgType::kReadResp));
  w.u64(m.opid);
  w.tag(m.tag);
  w.clock(m.vc);
  w.bytes(m.value);
  return w.take();
}

std::vector<std::uint8_t> encode_pong(const Pong& m) {
  Writer w(12);
  w.u8(static_cast<std::uint8_t>(ClientMsgType::kPong));
  w.u64(m.token);
  w.u8(m.ready ? 1 : 0);
  return w.take();
}

std::vector<std::uint8_t> encode_stats_resp(const StatsResp& m) {
  Writer w(80 + 8 * (m.vc.size() + m.shard_ops.size()));
  w.u8(static_cast<std::uint8_t>(ClientMsgType::kStatsResp));
  w.u32(m.node);
  w.clock(m.vc);
  w.u64(m.history_entries);
  w.u64(m.inqueue_entries);
  w.u64(m.readl_entries);
  w.u64(m.writes);
  w.u64(m.reads);
  w.u64(m.error_events);
  w.u64(m.recoveries);
  w.u32(static_cast<std::uint32_t>(m.shard_ops.size()));
  for (const std::uint64_t v : m.shard_ops) w.u64(v);
  return w.take();
}

std::vector<std::uint8_t> encode_routed_write_req(const RoutedWriteReq& m) {
  Writer w(40 + 8 * m.frontier.size() + m.value.size());
  w.u8(static_cast<std::uint8_t>(ClientMsgType::kRoutedWriteReq));
  w.u64(m.opid);
  w.u64(m.client);
  w.u32(m.object);
  w.clock(m.frontier);
  w.bytes(m.value);
  return w.take();
}

std::vector<std::uint8_t> encode_routed_read_req(const RoutedReadReq& m) {
  Writer w(32 + 8 * m.frontier.size());
  w.u8(static_cast<std::uint8_t>(ClientMsgType::kRoutedReadReq));
  w.u64(m.opid);
  w.u64(m.client);
  w.u32(m.object);
  w.clock(m.frontier);
  return w.take();
}

std::vector<std::uint8_t> encode_routed_read_resp(const RoutedReadResp& m) {
  Writer w(48 + 8 * (m.vc.size() + m.tag.ts.size()) + m.value.size());
  w.u8(static_cast<std::uint8_t>(ClientMsgType::kRoutedReadResp));
  w.u64(m.opid);
  w.tag(m.tag);
  w.clock(m.vc);
  w.u8(m.cached ? 1 : 0);
  w.bytes(m.value);
  return w.take();
}

std::vector<std::uint8_t> encode_router_stats_req() {
  Writer w(1);
  w.u8(static_cast<std::uint8_t>(ClientMsgType::kRouterStatsReq));
  return w.take();
}

std::vector<std::uint8_t> encode_router_stats_resp(const RouterStatsResp& m) {
  Writer w(96 + 8 * m.backend_ops.size());
  w.u8(static_cast<std::uint8_t>(ClientMsgType::kRouterStatsResp));
  w.u64(m.routed_writes);
  w.u64(m.routed_reads);
  w.u64(m.cache_hits);
  w.u64(m.cache_misses);
  w.u64(m.cache_stale);
  w.u64(m.cache_expired);
  w.u64(m.cache_evictions);
  w.u64(m.cache_entries);
  w.u64(m.fallthroughs);
  w.u64(m.reroutes);
  w.u64(m.ring_remaps);
  w.u32(static_cast<std::uint32_t>(m.backend_ops.size()));
  for (const std::uint64_t v : m.backend_ops) w.u64(v);
  return w.take();
}

std::optional<Hello> decode_hello(erasure::Buffer payload) {
  SafeReader r = open(std::move(payload), ClientMsgType::kHello);
  Hello m;
  const std::uint8_t role = r.u8();
  if (role > static_cast<std::uint8_t>(PeerRole::kClient)) return std::nullopt;
  m.role = static_cast<PeerRole>(role);
  m.node = r.u32();
  if (!r.done()) return std::nullopt;
  return m;
}

std::optional<WriteReq> decode_write_req(erasure::Buffer payload) {
  SafeReader r = open(std::move(payload), ClientMsgType::kWriteReq);
  WriteReq m;
  m.opid = r.u64();
  m.client = r.u64();
  m.object = r.u32();
  m.value = r.bytes(r.remaining());
  if (!r.done()) return std::nullopt;
  return m;
}

std::optional<ReadReq> decode_read_req(erasure::Buffer payload) {
  SafeReader r = open(std::move(payload), ClientMsgType::kReadReq);
  ReadReq m;
  m.opid = r.u64();
  m.client = r.u64();
  m.object = r.u32();
  if (!r.done()) return std::nullopt;
  return m;
}

std::optional<Ping> decode_ping(erasure::Buffer payload) {
  SafeReader r = open(std::move(payload), ClientMsgType::kPing);
  Ping m;
  m.token = r.u64();
  if (!r.done()) return std::nullopt;
  return m;
}

bool decode_stats_req(erasure::Buffer payload) {
  SafeReader r = open(std::move(payload), ClientMsgType::kStatsReq);
  return r.done();
}

std::optional<WriteResp> decode_write_resp(erasure::Buffer payload) {
  SafeReader r = open(std::move(payload), ClientMsgType::kWriteResp);
  WriteResp m;
  m.opid = r.u64();
  m.tag = r.tag(clock_cap(r));
  m.vc = r.clock(clock_cap(r));
  if (!r.done()) return std::nullopt;
  return m;
}

std::optional<ReadResp> decode_read_resp(erasure::Buffer payload) {
  SafeReader r = open(std::move(payload), ClientMsgType::kReadResp);
  ReadResp m;
  m.opid = r.u64();
  m.tag = r.tag(clock_cap(r));
  m.vc = r.clock(clock_cap(r));
  m.value = r.bytes(r.remaining());
  if (!r.done()) return std::nullopt;
  return m;
}

std::optional<Pong> decode_pong(erasure::Buffer payload) {
  SafeReader r = open(std::move(payload), ClientMsgType::kPong);
  Pong m;
  m.token = r.u64();
  m.ready = r.u8() != 0;
  if (!r.done()) return std::nullopt;
  return m;
}

std::optional<StatsResp> decode_stats_resp(erasure::Buffer payload) {
  SafeReader r = open(std::move(payload), ClientMsgType::kStatsResp);
  StatsResp m;
  m.node = r.u32();
  m.vc = r.clock(clock_cap(r));
  m.history_entries = r.u64();
  m.inqueue_entries = r.u64();
  m.readl_entries = r.u64();
  m.writes = r.u64();
  m.reads = r.u64();
  m.error_events = r.u64();
  m.recoveries = r.u64();
  const std::uint32_t shards = r.u32();
  if (shards > r.remaining() / 8) return std::nullopt;
  m.shard_ops.reserve(shards);
  for (std::uint32_t i = 0; i < shards; ++i) m.shard_ops.push_back(r.u64());
  if (!r.done()) return std::nullopt;
  return m;
}

std::optional<RoutedWriteReq> decode_routed_write_req(
    erasure::Buffer payload) {
  SafeReader r = open(std::move(payload), ClientMsgType::kRoutedWriteReq);
  RoutedWriteReq m;
  m.opid = r.u64();
  m.client = r.u64();
  m.object = r.u32();
  m.frontier = r.clock(clock_cap(r));
  m.value = r.bytes(r.remaining());
  if (!r.done()) return std::nullopt;
  return m;
}

std::optional<RoutedReadReq> decode_routed_read_req(erasure::Buffer payload) {
  SafeReader r = open(std::move(payload), ClientMsgType::kRoutedReadReq);
  RoutedReadReq m;
  m.opid = r.u64();
  m.client = r.u64();
  m.object = r.u32();
  m.frontier = r.clock(clock_cap(r));
  if (!r.done()) return std::nullopt;
  return m;
}

std::optional<RoutedReadResp> decode_routed_read_resp(
    erasure::Buffer payload) {
  SafeReader r = open(std::move(payload), ClientMsgType::kRoutedReadResp);
  RoutedReadResp m;
  m.opid = r.u64();
  m.tag = r.tag(clock_cap(r));
  m.vc = r.clock(clock_cap(r));
  m.cached = r.u8() != 0;
  m.value = r.bytes(r.remaining());
  if (!r.done()) return std::nullopt;
  return m;
}

bool decode_router_stats_req(erasure::Buffer payload) {
  SafeReader r = open(std::move(payload), ClientMsgType::kRouterStatsReq);
  return r.done();
}

std::optional<RouterStatsResp> decode_router_stats_resp(
    erasure::Buffer payload) {
  SafeReader r = open(std::move(payload), ClientMsgType::kRouterStatsResp);
  RouterStatsResp m;
  m.routed_writes = r.u64();
  m.routed_reads = r.u64();
  m.cache_hits = r.u64();
  m.cache_misses = r.u64();
  m.cache_stale = r.u64();
  m.cache_expired = r.u64();
  m.cache_evictions = r.u64();
  m.cache_entries = r.u64();
  m.fallthroughs = r.u64();
  m.reroutes = r.u64();
  m.ring_remaps = r.u64();
  const std::uint32_t backends = r.u32();
  if (backends > r.remaining() / 8) return std::nullopt;
  m.backend_ops.reserve(backends);
  for (std::uint32_t i = 0; i < backends; ++i) {
    m.backend_ops.push_back(r.u64());
  }
  if (!r.done()) return std::nullopt;
  return m;
}

}  // namespace causalec::net
