#include "net/process_cluster.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <thread>

#include "common/expect.h"
#include "common/logging.h"
#include "net/net_client.h"
#include "net/socket.h"

namespace causalec::net {

namespace {

using Clock = std::chrono::steady_clock;

std::string make_temp_dir() {
  const char* tmp = std::getenv("TMPDIR");
  std::string tmpl = (tmp != nullptr ? std::string(tmp) : std::string("/tmp"));
  tmpl += "/causalec_net_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  CEC_CHECK_MSG(::mkdtemp(buf.data()) != nullptr,
                "mkdtemp failed: errno " << errno);
  return std::string(buf.data());
}

}  // namespace

std::vector<std::uint16_t> reserve_loopback_ports(std::size_t n) {
  std::vector<ScopedFd> holders;
  std::vector<std::uint16_t> ports;
  holders.reserve(n);
  ports.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ScopedFd fd = listen_tcp("127.0.0.1", 0, /*reuseport=*/false);
    CEC_CHECK_MSG(fd.valid(), "cannot reserve a loopback port");
    ports.push_back(local_port(fd.get()));
    holders.push_back(std::move(fd));
  }
  return ports;  // holders close here, releasing every port at once
}

ProcessCluster::ProcessCluster(ProcessClusterConfig config)
    : config_(std::move(config)) {
  CEC_CHECK(!config_.server_bin.empty());
  CEC_CHECK(config_.num_servers >= 1);
  pids_.assign(config_.num_servers, -1);
}

ProcessCluster::~ProcessCluster() {
  for (std::size_t i = 0; i < pids_.size(); ++i) {
    if (pids_[i] > 0) ::kill(pids_[i], SIGTERM);
  }
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  for (std::size_t i = 0; i < pids_.size(); ++i) {
    if (pids_[i] <= 0) continue;
    while (Clock::now() < deadline) {
      if (::waitpid(pids_[i], nullptr, WNOHANG) != 0) {
        pids_[i] = -1;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (pids_[i] > 0) {
      ::kill(pids_[i], SIGKILL);
      ::waitpid(pids_[i], nullptr, 0);
      pids_[i] = -1;
    }
  }
}

bool ProcessCluster::start() {
  CEC_CHECK(!started_);
  started_ = true;
  if (config_.work_dir.empty()) config_.work_dir = make_temp_dir();
  ports_ = reserve_loopback_ports(config_.num_servers);
  endpoints_.clear();
  for (const std::uint16_t port : ports_) {
    endpoints_.push_back("127.0.0.1:" + std::to_string(port));
  }
  cluster_ = ClusterConfig{};
  cluster_.num_servers = config_.num_servers;
  cluster_.num_objects = config_.num_objects;
  cluster_.value_bytes = config_.value_bytes;
  cluster_.endpoints = endpoints_;
  cluster_.groups = config_.groups;
  cluster_file_ = config_.work_dir + "/cluster.conf";
  CEC_CHECK_MSG(save_cluster_config(cluster_, cluster_file_),
                "cannot write cluster config " << cluster_file_);
  for (std::size_t i = 0; i < config_.num_servers; ++i) {
    if (!spawn(i)) return false;
  }
  return true;
}

std::vector<std::string> ProcessCluster::server_args(std::size_t i) const {
  std::vector<std::string> args = {
      config_.server_bin,
      "--node", std::to_string(i),
      "--cluster", cluster_file_,
      "--shards", std::to_string(config_.shards),
  };
  if (config_.persistence) {
    args.push_back("--data-dir");
    args.push_back(config_.work_dir + "/s" + std::to_string(i));
  }
  return args;
}

bool ProcessCluster::spawn(std::size_t i) {
  const std::vector<std::string> args = server_args(i);
  const std::string log_path =
      config_.work_dir + "/s" + std::to_string(i) + ".log";
  const pid_t pid = ::fork();
  if (pid < 0) {
    CEC_LOG(kError) << "net: fork failed: errno " << errno;
    return false;
  }
  if (pid == 0) {
    // Child: stdout/stderr into the per-server log (appended across
    // restarts -- the pre-crash tail is the post-mortem).
    const int log_fd =
        ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (log_fd >= 0) {
      ::dup2(log_fd, STDOUT_FILENO);
      ::dup2(log_fd, STDERR_FILENO);
      ::close(log_fd);
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const std::string& a : args) {
      argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    ::_exit(127);  // exec failed
  }
  pids_[i] = pid;
  return true;
}

bool ProcessCluster::await_ready(std::chrono::milliseconds timeout) {
  const auto deadline = Clock::now() + timeout;
  for (std::size_t i = 0; i < config_.num_servers; ++i) {
    if (pids_[i] <= 0) continue;
    bool up = false;
    while (Clock::now() < deadline) {
      NetClient probe(/*client=*/0);
      if (probe.connect(endpoints_[i], /*timeout_ms=*/250)) {
        probe.set_io_timeout_ms(1000);
        const auto pong = probe.ping(static_cast<std::uint64_t>(i) + 1);
        if (pong.has_value() && pong->ready) {
          up = true;
          break;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    if (!up) {
      CEC_LOG(kError) << "net: server " << i << " at " << endpoints_[i]
                      << " never became ready";
      return false;
    }
  }
  return true;
}

void ProcessCluster::kill_server(std::size_t i) {
  CEC_CHECK(i < pids_.size());
  CEC_CHECK_MSG(pids_[i] > 0, "kill_server: server " << i << " not running");
  ::kill(pids_[i], SIGKILL);
  ::waitpid(pids_[i], nullptr, 0);
  pids_[i] = -1;
}

bool ProcessCluster::restart(std::size_t i) {
  CEC_CHECK(i < pids_.size());
  CEC_CHECK_MSG(pids_[i] <= 0, "restart: server " << i << " is running");
  CEC_CHECK_MSG(config_.persistence,
                "restart requires ProcessClusterConfig::persistence");
  return spawn(i);
}

std::optional<StatsResp> ProcessCluster::stats(std::size_t i) {
  CEC_CHECK(i < pids_.size());
  if (pids_[i] <= 0) return std::nullopt;
  NetClient client(/*client=*/0);
  if (!client.connect(endpoints_[i], /*timeout_ms=*/1000)) {
    return std::nullopt;
  }
  client.set_io_timeout_ms(2000);
  return client.stats();
}

bool ProcessCluster::await_convergence(std::chrono::milliseconds timeout) {
  const auto deadline = Clock::now() + timeout;
  int stable_polls = 0;
  while (Clock::now() < deadline) {
    bool converged = true;
    std::optional<VectorClock> reference;
    for (std::size_t i = 0; i < pids_.size(); ++i) {
      if (pids_[i] <= 0) continue;
      const auto s = stats(i);
      if (!s.has_value() || s->history_entries != 0 ||
          s->inqueue_entries != 0 || s->readl_entries != 0) {
        converged = false;
        break;
      }
      if (!reference.has_value()) {
        reference = s->vc;
      } else if (!(*reference == s->vc)) {
        // Convergence oracle: every live server settles on the same
        // vector clock once all writes have been applied everywhere.
        converged = false;
        break;
      }
    }
    if (converged) {
      if (++stable_polls >= 2) return true;
    } else {
      stable_polls = 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

std::uint64_t ProcessCluster::total_error_events() {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < pids_.size(); ++i) {
    if (pids_[i] <= 0) continue;
    const auto s = stats(i);
    if (s.has_value()) total += s->error_events;
  }
  return total;
}

}  // namespace causalec::net
