// One established TCP connection on an event loop: owns the fd, the
// FrameReader (connection-owned read arenas feeding the zero-copy codec),
// and the outbound write queue.
//
// All state lives on the owning loop's thread. send() may be called from
// any thread (it posts); everything else is loop-thread-only. Lifetime is
// shared_ptr-based: the loop's fd handler closure keeps the connection
// alive until close, and response routing across threads holds weak_ptrs
// so a dead connection drops its responses instead of dangling.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "erasure/buffer.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "net/socket.h"

namespace causalec::net {

class Connection : public std::enable_shared_from_this<Connection> {
 public:
  /// Called on the loop thread for every complete payload frame.
  using FrameHandler =
      std::function<void(const std::shared_ptr<Connection>&,
                         erasure::Buffer payload)>;
  /// Called on the loop thread exactly once when the connection dies
  /// (peer hangup, read/write error, framing violation, or local close()).
  using CloseHandler = std::function<void(const std::shared_ptr<Connection>&)>;

  Connection(EventLoop* loop, ScopedFd fd);
  ~Connection() = default;

  /// Registers with the loop and starts reading. Loop thread only.
  void open(FrameHandler on_frame, CloseHandler on_close);

  /// Queue a ready-made frame (header + payload, see encode_frame) for
  /// writing. Any thread; the Buffer's arena is shared, not copied, so a
  /// multicast frame queued on n connections costs one allocation total.
  void send(erasure::Buffer frame);

  /// Any thread. Drops the fd and fires the close handler (on the loop
  /// thread) if the connection is still alive.
  void close();

  int fd() const { return fd_.get(); }
  EventLoop* loop() const { return loop_; }
  bool closed() const { return closed_; }

  /// Bytes queued but not yet written (loop thread only; tests).
  std::size_t write_backlog() const;

 private:
  void send_on_loop(erasure::Buffer frame);
  void handle_events(std::uint32_t events);
  void handle_readable();
  bool flush_writes();  // false when the connection died mid-write
  void close_on_loop();

  EventLoop* loop_;
  ScopedFd fd_;
  FrameHandler on_frame_;
  CloseHandler on_close_;
  FrameReader reader_;

  /// Outbound frames; front_written_ bytes of the front one already went
  /// out (partial-write bookkeeping).
  std::deque<erasure::Buffer> write_queue_;
  std::size_t front_written_ = 0;
  bool want_write_ = false;  // EPOLLOUT currently subscribed
  bool closed_ = false;

  /// Socket read chunk size: big enough that the common protocol frame
  /// (4 KiB value + tags) lands in one chunk and is delivered zero-copy.
  static constexpr std::size_t kReadChunkBytes = 64 * 1024;
};

}  // namespace causalec::net
