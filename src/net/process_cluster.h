// ProcessCluster: spawn n causalec_server processes on loopback, wait for
// readiness, and exercise them -- including SIGKILL / exec-restart cycles
// driving the crash-recovery path (persist journal + rejoin) across real
// process boundaries. Scriptable from ctest (tests/net_cluster_test.cpp)
// and reused by causalec_client --spawn for self-contained benches.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <sys/types.h>
#include <vector>

#include "net/client_proto.h"
#include "net/cluster_config.h"

namespace causalec::net {

/// Reserve n distinct ephemeral loopback ports: bind them all, read the
/// assigned ports, then release. The tiny steal-window race is acceptable
/// for tests; SO_REUSEADDR on the real listeners keeps rebinding reliable.
std::vector<std::uint16_t> reserve_loopback_ports(std::size_t n);

struct ProcessClusterConfig {
  /// Path to the causalec_server binary (tests get it via the
  /// CAUSALEC_SERVER_BIN compile definition).
  std::string server_bin;
  std::size_t num_servers = 5;
  std::size_t num_objects = 3;
  std::size_t value_bytes = 64;
  /// Scratch directory for per-server data dirs and log files; empty =
  /// mkdtemp under TMPDIR. Not cleaned up (ctest prunes its own work dirs;
  /// post-mortems want the logs).
  std::string work_dir;
  /// Give each server a --data-dir (required for restart()).
  bool persistence = true;
  std::size_t shards = 2;
  /// Routing groups written into the generated cluster config (frontdoor
  /// tier); empty = one group per node.
  std::vector<std::vector<NodeId>> groups;
};

class ProcessCluster {
 public:
  explicit ProcessCluster(ProcessClusterConfig config);
  ~ProcessCluster();

  ProcessCluster(const ProcessCluster&) = delete;
  ProcessCluster& operator=(const ProcessCluster&) = delete;

  /// Reserve ports, write the shared cluster config file, and spawn every
  /// server. False if any spawn fails.
  bool start();

  /// The generated cluster config and its on-disk path (valid after
  /// start(); the same file every server was handed via --cluster).
  const ClusterConfig& cluster() const { return cluster_; }
  const std::string& cluster_file() const { return cluster_file_; }

  /// Poll every live server with pings until all report ready.
  bool await_ready(std::chrono::milliseconds timeout);

  /// "127.0.0.1:port" of server i (valid after start()).
  const std::string& endpoint(std::size_t i) const { return endpoints_[i]; }
  const std::vector<std::string>& endpoints() const { return endpoints_; }
  std::size_t num_servers() const { return config_.num_servers; }
  bool running(std::size_t i) const { return pids_[i] > 0; }

  /// SIGKILL server i and reap it -- a hard crash, no shutdown path runs.
  void kill_server(std::size_t i);

  /// Re-exec server i with its original arguments (same port, same data
  /// dir); it restores its journal and rejoins. Requires persistence.
  bool restart(std::size_t i);

  /// One stats round-trip to server i (fresh connection each call).
  std::optional<StatsResp> stats(std::size_t i);

  /// All live servers report equal vector clocks and empty transient state
  /// (history/inqueue/readl), stable across two polls: the cross-process
  /// version of ThreadedCluster::await_convergence.
  bool await_convergence(std::chrono::milliseconds timeout);

  /// Sum of error1+error2 across live servers (must stay 0).
  std::uint64_t total_error_events();

 private:
  bool spawn(std::size_t i);
  std::vector<std::string> server_args(std::size_t i) const;

  ProcessClusterConfig config_;
  ClusterConfig cluster_;
  std::string cluster_file_;
  std::vector<std::uint16_t> ports_;
  std::vector<std::string> endpoints_;
  std::vector<pid_t> pids_;
  bool started_ = false;
};

}  // namespace causalec::net
