#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace causalec {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_emit_mu;
thread_local int t_node = -1;

using Clock = std::chrono::steady_clock;
const Clock::time_point g_start = Clock::now();

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void set_log_thread_node(int node) { t_node = node; }

int log_thread_node() { return t_node; }

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - g_start).count();
  char node_tag[16] = "";
  if (t_node >= 0) std::snprintf(node_tag, sizeof(node_tag), " n%d", t_node);
  // One fprintf per line under the mutex: node threads never interleave.
  std::lock_guard<std::mutex> lock(g_emit_mu);
  std::fprintf(stderr, "[%s +%.3fs%s] %s\n", level_name(level), elapsed_s,
               node_tag, message.c_str());
}
}  // namespace detail

}  // namespace causalec
