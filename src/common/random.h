// Deterministic, fast pseudo-random number generation.
//
// Everything in this repository that needs randomness (schedules, workloads,
// property tests) goes through Rng so that every run is reproducible from a
// single 64-bit seed.
#pragma once

#include <cstdint>

#include "common/expect.h"

namespace causalec {

/// splitmix64: used to expand a user seed into xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — small, fast, high-quality generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0xC0FFEE) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    CEC_DCHECK(bound > 0);
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    CEC_DCHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial.
  bool next_bool(double p_true) { return next_double() < p_true; }

  /// Exponentially distributed with the given rate (for Poisson processes).
  double next_exponential(double rate);

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace causalec

#include <cmath>

namespace causalec {

inline double Rng::next_exponential(double rate) {
  CEC_DCHECK(rate > 0);
  double u = next_double();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

}  // namespace causalec
