// Minimal leveled logger.
//
// The simulator and servers log through this; tests run with the logger
// silenced (level Off) unless debugging.
//
// Emission is serialized behind a mutex so lines from concurrent node
// threads (ThreadedCluster) never interleave. Each line carries the level,
// a wall-clock offset since process start, and -- when the emitting thread
// has declared one via set_thread_node() -- the node id:
//
//   [INFO  +0.012s n3] re-encode object 2
#pragma once

#include <sstream>
#include <string>

namespace causalec {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Tags the calling thread with a node id; subsequent log lines from this
/// thread carry "nN". Pass a negative value to clear. Thread-local.
void set_log_thread_node(int node);
int log_thread_node();

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}  // namespace detail

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { detail::log_emit(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace causalec

#define CEC_LOG(level)                                          \
  if (::causalec::LogLevel::level < ::causalec::log_level()) {  \
  } else                                                        \
    ::causalec::LogLine(::causalec::LogLevel::level)
