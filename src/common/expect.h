// Checked-precondition macros.
//
// CEC_CHECK is always on (it guards protocol invariants whose violation means
// the implementation is wrong; continuing would silently corrupt data).
// CEC_DCHECK compiles out in NDEBUG builds and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace causalec::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d %s\n", expr, file, line,
               msg.c_str());
  std::abort();
}

}  // namespace causalec::detail

#define CEC_CHECK(cond)                                                  \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::causalec::detail::check_failed(#cond, __FILE__, __LINE__, "");   \
    }                                                                    \
  } while (0)

#define CEC_CHECK_MSG(cond, msg)                                         \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::ostringstream cec_oss_;                                       \
      cec_oss_ << msg;                                                   \
      ::causalec::detail::check_failed(#cond, __FILE__, __LINE__,        \
                                       cec_oss_.str());                  \
    }                                                                    \
  } while (0)

#ifdef NDEBUG
#define CEC_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define CEC_DCHECK(cond) CEC_CHECK(cond)
#endif
