// Basic strongly-named scalar types shared across the library.
//
// We keep these as plain aliases (not wrapper classes) because they cross
// module boundaries constantly and appear in aggregate message structs; the
// naming carries the intent while staying trivially copyable and hashable.
#pragma once

#include <cstdint>
#include <limits>

namespace causalec {

/// Index of a server node in {0, ..., N-1}.
using NodeId = std::uint32_t;

/// Index of an object (the paper's X_1..X_K) in {0, ..., K-1}.
using ObjectId = std::uint32_t;

/// Unique client identifier (the paper's natural-number id).
using ClientId = std::uint64_t;

/// Unique operation identifier (the paper's opid from set I).
using OpId = std::uint64_t;

/// Simulated time in nanoseconds.
using SimTime = std::int64_t;

/// The reserved "client id" used for internal (localhost) reads that the
/// Encoding action issues to re-encode the stored codeword symbol.
inline constexpr ClientId kLocalhost = std::numeric_limits<ClientId>::max();

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

}  // namespace causalec
