// Shard-local arena recycling for erasure::Buffer.
//
// Every Buffer owns (a slice of) one refcounted byte Arena. Without a pool,
// arenas are plain heap allocations and every payload costs one malloc.
// With a BufferPool installed on the current thread (NodeDaemon and
// ThreadedCluster install one per shard/node thread), arenas whose last
// reference dies return to size-class free lists in their *origin* pool and
// are handed out again on the next alloc -- the steady-state write path
// performs zero mallocs for payload-sized buffers (< 1 malloc/op in
// bench_throughput --saturate is the committed floor).
//
// Design notes:
//   * The refcount is intrusive (one atomic in the Arena header), not a
//     shared_ptr control block: a control-block malloc per acquire would
//     defeat the purpose.
//   * Free lists are pow2 size-class buckets with a bounded depth; arenas
//     above the largest class (or released after their origin pool closed)
//     are simply deleted.
//   * Releases may come from any thread (a broadcast frame dies on whatever
//     node thread drops the last reference); they lock the origin pool's
//     mutex, which is uncontended in the common shard-local case.
//   * Counters are relaxed per-pool atomics, aggregated on read through a
//     weak registry (Buffer::alloc_stats()); a closing pool folds its
//     counters into the process-wide totals so before/after deltas survive
//     pool churn.
//   * CAUSALEC_NUMA=1 pre-faults each fresh pooled arena to its full
//     size-class capacity on the acquiring thread, so first-touch page
//     placement pins the arena's pages to that thread's NUMA node. This is
//     portable best-effort locality (no libnuma dependency); on UMA
//     machines it degrades to a harmless pre-touch.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace causalec::erasure {

class PoolCore;

/// One refcounted byte arena. `origin` is null for plain heap arenas;
/// pooled arenas keep their origin pool alive so a late release (after the
/// owning BufferPool object died) still finds a valid -- if closed -- pool.
struct Arena {
  std::atomic<long> refs{1};
  std::vector<std::uint8_t> bytes;
  std::shared_ptr<PoolCore> origin;
  std::uint8_t size_class = 0;  // meaningful only when origin != nullptr

  void ref() { refs.fetch_add(1, std::memory_order_relaxed); }
  /// Drops one reference; destroys (or recycles into the origin pool) on
  /// the last one.
  void unref();
};

/// Relaxed per-pool counters, aggregated by Buffer::alloc_stats().
struct PoolCounters {
  std::uint64_t fresh = 0;        // arenas newly malloc'd through this pool
  std::uint64_t fresh_bytes = 0;
  std::uint64_t recycled = 0;     // allocs served from a free list
  std::uint64_t returned = 0;     // arenas accepted back into a free list
  std::uint64_t dropped = 0;      // arenas deleted (bucket full / closed)
};

/// The shared state of one pool: size-class free lists + counters. Held by
/// shared_ptr from the owning BufferPool, every live pooled Arena, and a
/// process-wide weak registry (for stats aggregation).
class PoolCore {
 public:
  /// Size classes are pow2 from 2^kMinClassLog2 (256 B) to 2^kMaxClassLog2
  /// (1 MiB); requests above the top class are not pooled.
  static constexpr std::size_t kMinClassLog2 = 8;
  static constexpr std::size_t kMaxClassLog2 = 20;
  static constexpr std::size_t kNumClasses = kMaxClassLog2 - kMinClassLog2 + 1;
  /// Free-list depth cap per class, bounding idle memory at
  /// sum(2^c * kMaxPerClass) per pool.
  static constexpr std::size_t kMaxPerClass = 64;

  ~PoolCore();

  /// An arena with bytes.size() == n (contents unspecified), or nullptr if
  /// n is outside the pooled range. Recycles when the class bucket has an
  /// arena, otherwise mallocs a fresh one reserved to the class capacity.
  /// Must be called via the owning BufferPool's thread (any thread works,
  /// but counters and NUMA placement assume the caller owns the pool).
  Arena* acquire(std::size_t n, std::shared_ptr<PoolCore> self);

  /// Takes back a dead arena (refs == 0): pushed onto its class bucket, or
  /// deleted when the bucket is full or the pool is closed.
  void release(Arena* arena);

  /// Non-blocking release: false (arena NOT taken) when the pool mutex is
  /// contended, the bucket is full, or the pool is closed -- the caller
  /// then re-homes the arena elsewhere (see Arena::unref()).
  bool try_release(Arena* arena);

  /// Drains the free lists and folds this pool's counters into the
  /// process-wide totals; subsequent releases delete arenas.
  void close();

  PoolCounters counters() const;
  void reset_counters();

 private:
  friend class BufferPool;

  static int class_for(std::size_t n);

  mutable std::mutex mu_;
  std::vector<Arena*> buckets_[kNumClasses];
  bool closed_ = false;

  std::atomic<std::uint64_t> fresh_{0};
  std::atomic<std::uint64_t> fresh_bytes_{0};
  std::atomic<std::uint64_t> recycled_{0};
  std::atomic<std::uint64_t> returned_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// A shard-local buffer pool. Construct one per shard/node thread and
/// install it with ScopedInstall (or install()/uninstall()) so
/// Buffer::alloc on that thread recycles through it. Destruction closes
/// the core; buffers that outlive the pool stay valid (their arenas hold
/// the core) and free straight to the heap afterwards.
class BufferPool {
 public:
  BufferPool();
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Makes this pool the current thread's allocator. Uninstall before the
  /// pool dies (ScopedInstall does both).
  void install();
  /// Clears the current thread's pool (no-op if another pool is current).
  void uninstall();

  class ScopedInstall {
   public:
    explicit ScopedInstall(BufferPool& pool) : pool_(pool) { pool_.install(); }
    ~ScopedInstall() { pool_.uninstall(); }
    ScopedInstall(const ScopedInstall&) = delete;
    ScopedInstall& operator=(const ScopedInstall&) = delete;

   private:
    BufferPool& pool_;
  };

  PoolCounters counters() const { return core_->counters(); }

 private:
  std::shared_ptr<PoolCore> core_;
};

namespace pool_detail {

/// The current thread's pool, or nullptr (plain heap arenas).
std::shared_ptr<PoolCore>* tls_pool();

/// Aggregated counters of every live registered pool.
PoolCounters registry_totals();

/// Resets the counters of every live registered pool (test/bench seam,
/// used by Buffer::reset_alloc_stats()).
void registry_reset();

/// Process-wide totals folded from closed pools, owned by the pool layer
/// (Buffer's own globals only count non-pooled arenas).
PoolCounters folded_totals();
void folded_reset();

/// CAUSALEC_NUMA=1/on enables first-touch pre-faulting (read once).
bool numa_prefault_enabled();

}  // namespace pool_detail

}  // namespace causalec::erasure
