// Object values and codeword symbols as shared, copy-on-write byte buffers.
//
// The CausalEC server core is untemplated; all field-specific packing lives
// behind the erasure::Code interface. A Value is an element of V = F^d
// packed little-endian; a Symbol is a server's codeword symbol, i.e. an
// element of W_i (possibly several stacked rows for servers that the code
// assigns more than one linear combination).
//
// A Value is a thin handle over an immutable refcounted Buffer: copying or
// storing one (HistoryList, InQueue, the n-1 AppMessage broadcast copies)
// shares the underlying arena instead of duplicating bytes. Mutation goes
// through the non-const accessors, which copy-on-write: in place when the
// arena is uniquely owned, one fresh copy otherwise. See DESIGN.md §5.3
// for the ownership rules.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <utility>
#include <vector>

#include "erasure/buffer.h"

namespace causalec::erasure {

class Value {
 public:
  Value() = default;

  explicit Value(std::size_t n) : buf_(Buffer::alloc(n, 0)) {}
  Value(std::size_t n, std::uint8_t fill) : buf_(Buffer::alloc(n, fill)) {}

  /// Adopts an already-built byte vector (no byte copy). Implicit on
  /// purpose: codec readers and codes build bytes in a plain vector and
  /// hand them over.
  Value(std::vector<std::uint8_t> bytes) : buf_(Buffer::adopt(std::move(bytes))) {}

  Value(std::initializer_list<std::uint8_t> bytes)
      : Value(std::vector<std::uint8_t>(bytes)) {}

  /// Views (a slice of) an existing buffer -- the codec's zero-copy
  /// deserialization path, where values alias the received frame.
  explicit Value(Buffer buffer) : buf_(std::move(buffer)) {}

  std::size_t size() const { return buf_.size(); }
  bool empty() const { return buf_.empty(); }
  const std::uint8_t* data() const { return buf_.data(); }

  const std::uint8_t* begin() const { return buf_.data(); }
  const std::uint8_t* end() const { return buf_.data() + buf_.size(); }
  const std::uint8_t& operator[](std::size_t i) const { return data()[i]; }

  /// Mutable accessors: copy-on-write (no copy when uniquely owned).
  std::uint8_t* begin() { return unshare(); }
  std::uint8_t* end() { return unshare() + buf_.size(); }
  std::uint8_t& operator[](std::size_t i) { return unshare()[i]; }
  std::span<std::uint8_t> mutable_span() { return {unshare(), buf_.size()}; }

  /// Resizes to `n` bytes (zero-filled); always a fresh arena unless the
  /// size already matches.
  void resize(std::size_t n) {
    if (n == buf_.size()) return;
    std::vector<std::uint8_t> grown(n, 0);
    const std::size_t keep = std::min(n, buf_.size());
    for (std::size_t i = 0; i < keep; ++i) grown[i] = data()[i];
    buf_ = Buffer::adopt(std::move(grown));
  }

  /// Shares the arena; the slice views [offset, offset + length).
  Value slice(std::size_t offset, std::size_t length) const {
    return Value(buf_.slice(offset, length));
  }

  const Buffer& buffer() const { return buf_; }

  std::span<const std::uint8_t> span() const { return buf_.span(); }

  /// Non-const Values don't model contiguous_range (no mutable data()),
  /// so this conversion is what lets them bind to span<const uint8_t>
  /// parameters; const Values take std::span's range constructor instead.
  operator std::span<const std::uint8_t>() const { return buf_.span(); }

  friend bool operator==(const Value& a, const Value& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  friend bool operator==(const Value& a,
                         const std::vector<std::uint8_t>& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  friend bool operator==(const std::vector<std::uint8_t>& a,
                         const Value& b) {
    return b == a;
  }

 private:
  std::uint8_t* unshare() {
    if (buf_.empty()) return nullptr;
    if (!buf_.unique()) buf_ = Buffer::copy_of(buf_.span());
    return buf_.mutable_data();
  }

  Buffer buf_;
};

/// A server's codeword symbol: same representation, same sharing rules.
using Symbol = Value;

}  // namespace causalec::erasure
