// Object values and codeword symbols as opaque byte buffers.
//
// The CausalEC server core is untemplated; all field-specific packing lives
// behind the erasure::Code interface. A Value is an element of V = F^d
// packed little-endian; a Symbol is a server's codeword symbol, i.e. an
// element of W_i (possibly several stacked rows for servers that the code
// assigns more than one linear combination).
#pragma once

#include <cstdint>
#include <vector>

namespace causalec::erasure {

using Value = std::vector<std::uint8_t>;
using Symbol = std::vector<std::uint8_t>;

}  // namespace causalec::erasure
