#include "erasure/codes.h"

#include <numeric>

#include "common/random.h"
#include "erasure/linear_code.h"
#include "gf/gf256.h"
#include "gf/prime_field.h"

namespace causalec::erasure {

namespace {

using GF = gf::GF256;
using MatrixGF = linalg::Matrix<GF>;

}  // namespace

// Default for codes without a repair planner. LinearCodeT overrides; any
// future non-linear Code must either override or never be asked to repair.
Symbol Code::repair_symbol(NodeId failed, std::span<const NodeId> servers,
                           std::span<const Symbol> symbols) const {
  (void)failed, (void)servers, (void)symbols;
  CEC_CHECK_MSG(false, "repair_symbol: " << describe()
                                         << " has no repair planner");
}

CodePtr make_replication(std::size_t num_servers, std::size_t num_objects,
                         std::size_t value_bytes) {
  std::vector<MatrixGF> per_server(num_servers,
                                   MatrixGF::identity(num_objects));
  return std::make_shared<LinearCodeT<GF>>(std::move(per_server), value_bytes,
                                           "replication");
}

CodePtr make_partial_replication(
    const std::vector<std::vector<ObjectId>>& placement,
    std::size_t num_objects, std::size_t value_bytes) {
  std::vector<MatrixGF> per_server;
  per_server.reserve(placement.size());
  std::vector<bool> covered(num_objects, false);
  for (const auto& objects : placement) {
    MatrixGF m(objects.size(), num_objects);
    for (std::size_t r = 0; r < objects.size(); ++r) {
      CEC_CHECK(objects[r] < num_objects);
      m(r, objects[r]) = GF::one;
      covered[objects[r]] = true;
    }
    per_server.push_back(std::move(m));
  }
  for (std::size_t k = 0; k < num_objects; ++k) {
    CEC_CHECK_MSG(covered[k], "object X" << k << " placed nowhere");
  }
  return std::make_shared<LinearCodeT<GF>>(std::move(per_server), value_bytes,
                                           "partial-replication");
}

CodePtr make_systematic_rs(std::size_t num_servers, std::size_t num_objects,
                           std::size_t value_bytes) {
  const std::size_t n = num_servers;
  const std::size_t k = num_objects;
  CEC_CHECK(n >= k);
  CEC_CHECK_MSG(n <= 256, "GF(2^8) RS supports at most 256 servers");
  MatrixGF stacked(n, k);
  // Systematic part.
  for (std::size_t i = 0; i < k; ++i) stacked(i, i) = GF::one;
  // Cauchy parity rows: entry (i, j) = 1 / (x_i + y_j) with
  // x_i = i + k, y_j = j; all sums nonzero and distinct in GF(2^8).
  for (std::size_t i = k; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      const GF::Elem x = GF::from_int(i);
      const GF::Elem y = GF::from_int(j);
      stacked(i, j) = GF::inv(GF::add(x, y));
    }
  }
  return LinearCodeT<GF>::one_row_per_server(stacked, value_bytes,
                                             "systematic-RS");
}

CodePtr make_paper_5_3(std::size_t value_bytes) {
  using F = gf::F257;
  using M = linalg::Matrix<F>;
  const M stacked = M::from_rows({{1, 0, 0},
                                  {0, 1, 0},
                                  {0, 0, 1},
                                  {1, 1, 1},
                                  {1, 2, 1}});
  return LinearCodeT<F>::one_row_per_server(stacked, value_bytes,
                                            "paper-(5,3)-F257");
}

CodePtr make_paper_5_3_gf256(std::size_t value_bytes) {
  const MatrixGF stacked = MatrixGF::from_rows({{1, 0, 0},
                                                {0, 1, 0},
                                                {0, 0, 1},
                                                {1, 1, 1},
                                                {1, 2, 1}});
  return LinearCodeT<GF>::one_row_per_server(stacked, value_bytes,
                                             "paper-(5,3)-GF256");
}

CodePtr make_six_dc_cross_object(std::size_t value_bytes) {
  // Order: Seoul, Mumbai, Ireland, London, N.California, Oregon.
  const MatrixGF stacked = MatrixGF::from_rows({{1, 0, 1, 0},
                                                {0, 1, 0, 1},
                                                {1, 0, 0, 0},
                                                {0, 1, 0, 0},
                                                {0, 0, 0, 1},
                                                {0, 0, 1, 0}});
  return LinearCodeT<GF>::one_row_per_server(stacked, value_bytes,
                                             "six-dc-cross-object");
}

CodePtr make_random_code(std::uint64_t seed, std::size_t num_servers,
                         std::size_t num_objects, std::size_t value_bytes,
                         double density) {
  Rng rng(seed);
  for (int attempt = 0; attempt < 256; ++attempt) {
    MatrixGF stacked(num_servers, num_objects);
    for (std::size_t i = 0; i < num_servers; ++i) {
      bool any = false;
      for (std::size_t j = 0; j < num_objects; ++j) {
        if (rng.next_bool(density)) {
          stacked(i, j) = GF::from_int(rng.next_in(1, 255));
          any = true;
        }
      }
      // Avoid useless all-zero servers: force one entry.
      if (!any) {
        stacked(i, rng.next_below(num_objects)) =
            GF::from_int(rng.next_in(1, 255));
      }
    }
    // Recoverability of every object requires the stacked matrix to have
    // full column rank; check cheaply before paying for set enumeration.
    if (linalg::rank<GF>(stacked) != num_objects) continue;
    return LinearCodeT<GF>::one_row_per_server(stacked, value_bytes,
                                               "random-code");
  }
  CEC_CHECK_MSG(false, "could not generate a recoverable random code");
}

CodePtr make_lrc(std::size_t num_objects, std::size_t local_group_size,
                 std::size_t global_parities, std::size_t value_bytes) {
  CEC_CHECK(num_objects >= 1 && local_group_size >= 1);
  CEC_CHECK(num_objects % local_group_size == 0);
  const std::size_t num_groups = num_objects / local_group_size;
  const std::size_t n = num_objects + num_groups + global_parities;
  CEC_CHECK_MSG(n <= 16, "recovery-set enumeration caps the server count");

  MatrixGF stacked(n, num_objects);
  // Data servers: one uncoded object each.
  for (std::size_t i = 0; i < num_objects; ++i) stacked(i, i) = GF::one;
  // Local parities: XOR of each group.
  for (std::size_t g = 0; g < num_groups; ++g) {
    const std::size_t row = num_objects + g;
    for (std::size_t j = 0; j < local_group_size; ++j) {
      stacked(row, g * local_group_size + j) = GF::one;
    }
  }
  // Global parities: Cauchy rows over all objects, chosen to avoid the
  // x-coordinates used implicitly above.
  for (std::size_t p = 0; p < global_parities; ++p) {
    const std::size_t row = num_objects + num_groups + p;
    for (std::size_t j = 0; j < num_objects; ++j) {
      const GF::Elem x = GF::from_int(64 + p);
      const GF::Elem y = GF::from_int(j);
      stacked(row, j) = GF::inv(GF::add(x, y));
    }
  }
  return LinearCodeT<GF>::one_row_per_server(stacked, value_bytes, "LRC");
}

CodePtr make_azure_lrc_6_2_2(std::size_t value_bytes) {
  return make_lrc(/*num_objects=*/6, /*local_group_size=*/3,
                  /*global_parities=*/2, value_bytes);
}

CodePtr make_wide_rs_14_10(std::size_t value_bytes) {
  return make_systematic_rs(/*num_servers=*/14, /*num_objects=*/10,
                            value_bytes);
}

bool is_mds(const Code& code) {
  const std::size_t n = code.num_servers();
  const std::size_t k = code.num_objects();
  CEC_CHECK(n <= 16);
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    if (static_cast<std::size_t>(std::popcount(mask)) != k) continue;
    std::vector<NodeId> servers;
    for (NodeId s = 0; s < n; ++s) {
      if (mask >> s & 1) servers.push_back(s);
    }
    for (ObjectId obj = 0; obj < k; ++obj) {
      if (!code.is_recovery_set(obj, servers)) return false;
    }
  }
  return true;
}

}  // namespace causalec::erasure
