// Refcounted immutable payload buffer.
//
// A Buffer owns (a slice of) one heap byte arena through a shared_ptr.
// Copying a Buffer or taking a slice() shares the arena instead of copying
// bytes, so a payload that fans out to n destinations (the Alg. 1 line 6
// broadcast, a serialized frame delivered to several mailboxes) costs one
// allocation total, not one per hop.
//
// Ownership rules (see DESIGN.md §5.3):
//   * the arena is logically immutable once any second reference exists;
//   * mutable_data() may only be called while the arena is uniquely owned
//     (use_count() == 1) -- this is what erasure::Value's copy-on-write
//     relies on;
//   * slices keep the whole arena alive: a 4-byte slice of a 4 MiB frame
//     pins the frame. Callers that outlive the frame by design (e.g. the
//     HistoryList) are fine because protocol values are sliced from frames
//     sized proportionally to them.
//
// Every fresh arena (alloc / copy_of / adopt) bumps a process-wide counter
// so tests can assert allocation counts on the data path
// (tests/copy_count_test.cpp).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/expect.h"

namespace causalec::erasure {

class Buffer {
 public:
  struct AllocStats {
    std::uint64_t allocations = 0;  // fresh arenas created
    std::uint64_t bytes = 0;        // total bytes of those arenas
  };

  Buffer() = default;

  /// Fresh arena of `n` bytes, all set to `fill`.
  static Buffer alloc(std::size_t n, std::uint8_t fill = 0) {
    return adopt(std::vector<std::uint8_t>(n, fill));
  }

  /// Fresh arena holding a copy of `bytes`.
  static Buffer copy_of(std::span<const std::uint8_t> bytes) {
    return adopt(std::vector<std::uint8_t>(bytes.begin(), bytes.end()));
  }

  /// Takes ownership of an already-built vector (no byte copy, but the
  /// arena is new to the buffer layer, so it counts as one allocation).
  static Buffer adopt(std::vector<std::uint8_t>&& bytes) {
    Buffer b;
    b.size_ = bytes.size();
    b.store_ = std::make_shared<std::vector<std::uint8_t>>(std::move(bytes));
    note_alloc(b.size_);
    return b;
  }

  /// Shares the arena; the slice views [offset, offset + length).
  Buffer slice(std::size_t offset, std::size_t length) const {
    CEC_CHECK(offset + length <= size_);
    Buffer b;
    b.store_ = store_;
    b.offset_ = offset_ + offset;
    b.size_ = length;
    return b;
  }

  const std::uint8_t* data() const {
    return store_ ? store_->data() + offset_ : nullptr;
  }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  std::span<const std::uint8_t> span() const { return {data(), size_}; }

  /// True when this handle is the only reference to the arena (mutation in
  /// place is then invisible to everyone else).
  bool unique() const { return store_ != nullptr && store_.use_count() == 1; }

  /// Mutable access; caller must hold the only reference (see unique()).
  std::uint8_t* mutable_data() {
    CEC_DCHECK(unique());
    return store_->data() + offset_;
  }

  /// How many handles (buffers/values/slices) share the arena; 0 for the
  /// empty buffer.
  long use_count() const { return store_ ? store_.use_count() : 0; }

  static AllocStats alloc_stats() {
    return {allocations_.load(std::memory_order_relaxed),
            alloc_bytes_.load(std::memory_order_relaxed)};
  }
  static void reset_alloc_stats() {
    allocations_.store(0, std::memory_order_relaxed);
    alloc_bytes_.store(0, std::memory_order_relaxed);
  }

 private:
  static void note_alloc(std::size_t n) {
    allocations_.fetch_add(1, std::memory_order_relaxed);
    alloc_bytes_.fetch_add(n, std::memory_order_relaxed);
  }

  static inline std::atomic<std::uint64_t> allocations_{0};
  static inline std::atomic<std::uint64_t> alloc_bytes_{0};

  std::shared_ptr<std::vector<std::uint8_t>> store_;
  std::size_t offset_ = 0;
  std::size_t size_ = 0;
};

}  // namespace causalec::erasure
