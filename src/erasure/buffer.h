// Refcounted immutable payload buffer.
//
// A Buffer owns (a slice of) one heap byte arena through an intrusive
// refcount (see erasure/arena_pool.h -- a shared_ptr control block per
// arena would cost a malloc per acquire and defeat the pool). Copying a
// Buffer or taking a slice() shares the arena instead of copying bytes, so
// a payload that fans out to n destinations (the Alg. 1 line 6 broadcast,
// a serialized frame delivered to several mailboxes) costs one allocation
// total, not one per hop.
//
// When a BufferPool is installed on the current thread (NodeDaemon /
// ThreadedCluster install one per shard thread), alloc/copy_of recycle
// arenas through its size-class free lists and the steady-state data path
// stops malloc'ing altogether; without one they are plain heap arenas.
//
// Ownership rules (see DESIGN.md §5.3):
//   * the arena is logically immutable once any second reference exists;
//   * mutable_data() may only be called while the arena is uniquely owned
//     (use_count() == 1) -- this is what erasure::Value's copy-on-write
//     relies on;
//   * slices keep the whole arena alive: a 4-byte slice of a 4 MiB frame
//     pins the frame. Callers that outlive the frame by design (e.g. the
//     HistoryList) are fine because protocol values are sliced from frames
//     sized proportionally to them.
//
// Every fresh arena (alloc / copy_of / adopt) counts toward alloc_stats();
// pool-recycled arenas count under `recycled` instead of `allocations`, so
// "allocations per op" measures true mallocs on the data path
// (tests/copy_count_test.cpp, bench_throughput --saturate).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/expect.h"
#include "erasure/arena_pool.h"

namespace causalec::erasure {

class Buffer {
 public:
  struct AllocStats {
    std::uint64_t allocations = 0;  // fresh arenas malloc'd
    std::uint64_t bytes = 0;        // total bytes of those arenas
    std::uint64_t recycled = 0;     // allocs served from a pool free list
  };

  Buffer() = default;

  Buffer(const Buffer& other)
      : arena_(other.arena_), offset_(other.offset_), size_(other.size_) {
    if (arena_ != nullptr) arena_->ref();
  }

  Buffer(Buffer&& other) noexcept
      : arena_(std::exchange(other.arena_, nullptr)),
        offset_(std::exchange(other.offset_, 0)),
        size_(std::exchange(other.size_, 0)) {}

  Buffer& operator=(const Buffer& other) {
    if (this != &other) {
      Buffer copy(other);
      swap(copy);
    }
    return *this;
  }

  Buffer& operator=(Buffer&& other) noexcept {
    if (this != &other) {
      reset();
      arena_ = std::exchange(other.arena_, nullptr);
      offset_ = std::exchange(other.offset_, 0);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  ~Buffer() { reset(); }

  /// Fresh (or pool-recycled) arena of `n` bytes, all set to `fill`.
  static Buffer alloc(std::size_t n, std::uint8_t fill = 0) {
    Buffer b = alloc_uninit(n);
    if (n != 0) std::memset(b.arena_->bytes.data(), fill, n);
    return b;
  }

  /// Like alloc() but the contents are unspecified (recycled arenas carry
  /// stale bytes) -- for write cursors that overwrite everything they
  /// expose, e.g. wire::Writer.
  static Buffer alloc_uninit(std::size_t n) {
    Buffer b;
    b.arena_ = acquire_arena(n);
    b.size_ = n;
    return b;
  }

  /// Fresh (or pool-recycled) arena holding a copy of `bytes`.
  static Buffer copy_of(std::span<const std::uint8_t> bytes) {
    Buffer b;
    b.arena_ = acquire_arena(bytes.size());
    b.size_ = bytes.size();
    if (!bytes.empty()) {
      std::memcpy(b.arena_->bytes.data(), bytes.data(), bytes.size());
    }
    return b;
  }

  /// Takes ownership of an already-built vector (no byte copy, never
  /// pooled -- the capacity is the caller's; still counts as one
  /// allocation to the buffer layer).
  static Buffer adopt(std::vector<std::uint8_t>&& bytes) {
    Buffer b;
    auto* a = new Arena;
    a->bytes = std::move(bytes);
    b.arena_ = a;
    b.size_ = a->bytes.size();
    note_alloc(b.size_);
    return b;
  }

  /// Shares the arena; the slice views [offset, offset + length).
  Buffer slice(std::size_t offset, std::size_t length) const {
    CEC_CHECK(offset + length <= size_);
    Buffer b;
    b.arena_ = arena_;
    if (b.arena_ != nullptr) b.arena_->ref();
    b.offset_ = offset_ + offset;
    b.size_ = length;
    return b;
  }

  const std::uint8_t* data() const {
    return arena_ != nullptr ? arena_->bytes.data() + offset_ : nullptr;
  }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  std::span<const std::uint8_t> span() const { return {data(), size_}; }

  /// True when this handle is the only reference to the arena (mutation in
  /// place is then invisible to everyone else).
  bool unique() const {
    return arena_ != nullptr &&
           arena_->refs.load(std::memory_order_acquire) == 1;
  }

  /// Mutable access; caller must hold the only reference (see unique()).
  std::uint8_t* mutable_data() {
    CEC_DCHECK(unique());
    return arena_->bytes.data() + offset_;
  }

  /// How many handles (buffers/values/slices) share the arena; 0 for the
  /// empty buffer.
  long use_count() const {
    return arena_ != nullptr ? arena_->refs.load(std::memory_order_acquire)
                             : 0;
  }

  /// Process-wide totals: the plain-arena globals plus every pool's
  /// counters (live pools via the registry, closed pools via the folded
  /// totals), so deltas survive pool churn.
  static AllocStats alloc_stats() {
    const PoolCounters live = pool_detail::registry_totals();
    const PoolCounters folded = pool_detail::folded_totals();
    AllocStats s;
    s.allocations = allocations_.load(std::memory_order_relaxed) +
                    live.fresh + folded.fresh;
    s.bytes = alloc_bytes_.load(std::memory_order_relaxed) +
              live.fresh_bytes + folded.fresh_bytes;
    s.recycled = live.recycled + folded.recycled;
    return s;
  }
  static void reset_alloc_stats() {
    allocations_.store(0, std::memory_order_relaxed);
    alloc_bytes_.store(0, std::memory_order_relaxed);
    pool_detail::registry_reset();
    pool_detail::folded_reset();
  }

 private:
  void reset() {
    if (arena_ != nullptr) {
      arena_->unref();
      arena_ = nullptr;
    }
    offset_ = 0;
    size_ = 0;
  }

  void swap(Buffer& other) noexcept {
    std::swap(arena_, other.arena_);
    std::swap(offset_, other.offset_);
    std::swap(size_, other.size_);
  }

  /// The current thread's pool if one is installed and `n` fits a size
  /// class; a plain heap arena otherwise.
  static Arena* acquire_arena(std::size_t n) {
    if (const std::shared_ptr<PoolCore>& pool = *pool_detail::tls_pool();
        pool != nullptr) {
      if (Arena* a = pool->acquire(n, pool)) return a;
    }
    auto* a = new Arena;
    a->bytes.resize(n);
    note_alloc(n);
    return a;
  }

  static void note_alloc(std::size_t n) {
    allocations_.fetch_add(1, std::memory_order_relaxed);
    alloc_bytes_.fetch_add(n, std::memory_order_relaxed);
  }

  static inline std::atomic<std::uint64_t> allocations_{0};
  static inline std::atomic<std::uint64_t> alloc_bytes_{0};

  Arena* arena_ = nullptr;
  std::size_t offset_ = 0;
  std::size_t size_ = 0;
};

}  // namespace causalec::erasure
