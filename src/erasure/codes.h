// Factory functions for the code families used in the paper and the
// benchmarks.
#pragma once

#include <cstdint>
#include <vector>

#include "erasure/code.h"

namespace causalec::erasure {

/// Full replication: every server stores every object uncoded
/// (the classical causally consistent data store layout).
CodePtr make_replication(std::size_t num_servers, std::size_t num_objects,
                         std::size_t value_bytes);

/// Partial replication: server i stores uncoded copies of exactly the
/// objects in placement[i]. Every object must appear somewhere.
CodePtr make_partial_replication(
    const std::vector<std::vector<ObjectId>>& placement,
    std::size_t num_objects, std::size_t value_bytes);

/// Systematic Reed-Solomon over GF(2^8) built from a Cauchy matrix:
/// servers 0..K-1 store x_0..x_{K-1} uncoded, servers K..N-1 store parity
/// combinations; any K servers form a recovery set for every object (MDS).
/// Requires N <= 256.
CodePtr make_systematic_rs(std::size_t num_servers, std::size_t num_objects,
                           std::size_t value_bytes);

/// The paper's running (5,3) example (Sec. 1.2):
///   Y1=X1, Y2=X2, Y3=X3, Y4=X1+X2+X3, Y5=X1+2*X2+X3
/// over the odd-characteristic field F_257 as the paper requires.
CodePtr make_paper_5_3(std::size_t value_bytes);

/// Same layout over GF(2^8) (works because coefficients 1 and 2 remain
/// distinct and the relevant submatrices stay invertible).
CodePtr make_paper_5_3_gf256(std::size_t value_bytes);

/// The Sec. 1.1 six-data-center cross-object code over 4 object groups:
///   Seoul: G1+G3, Mumbai: G2+G4, Ireland: G1, London: G2,
///   N.California: G4, Oregon: G3.
CodePtr make_six_dc_cross_object(std::size_t value_bytes);

/// A random one-row-per-server code over GF(2^8) with the given coefficient
/// density; regenerates until every object is recoverable. For property
/// tests.
CodePtr make_random_code(std::uint64_t seed, std::size_t num_servers,
                         std::size_t num_objects, std::size_t value_bytes,
                         double density);

/// A locally repairable code (Azure-LRC style) -- thematically the closest
/// classical relative of cross-object coding, since it optimizes *locality*:
/// objects are split into local groups of `local_group_size`, each group
/// gets one XOR local parity server, plus `global_parities` Reed-Solomon
/// style global parity servers over all objects. Layout (servers in order):
///   [ data servers (one per object) | one local parity per group |
///     global parities ]
/// A failed data server recovers from its small local group; reads of any
/// object are local at its data server.
CodePtr make_lrc(std::size_t num_objects, std::size_t local_group_size,
                 std::size_t global_parities, std::size_t value_bytes);

/// Azure-LRC(6,2,2): 6 data servers in 2 local groups of 3, one XOR local
/// parity per group, 2 global parities (n=10). The canonical locally
/// repairable configuration for the repair-plan bench/test battery: a data
/// or local-parity failure repairs from its 3-server local group instead of
/// a 6-symbol full decode.
CodePtr make_azure_lrc_6_2_2(std::size_t value_bytes);

/// Wide-stripe systematic RS(14,10): the MDS counterpoint in the repair
/// battery -- every single-failure repair must move k=10 symbols, so the
/// minimal-fetch planner degenerates to full decode, as theory demands.
CodePtr make_wide_rs_14_10(std::size_t value_bytes);

/// True iff every K-subset of servers is a recovery set for every object.
bool is_mds(const Code& code);

}  // namespace causalec::erasure
