// Decoder plans and the per-code plan cache.
//
// Decoding object k from a provided server set S reduces to one row vector
// lambda with lambda * stacked(S) = e_k, found by Gaussian elimination.
// The lambda for a given (object, S) never changes -- the code's matrices
// are immutable -- so LinearCodeT computes it once per (object, provided-
// server mask), flattens it into a DecodePlan (only the nonzero
// coefficients, each bound to its server row), and caches it here. Every
// later read with the same shape replays the plan: pure axpy kernel calls,
// no elimination.
//
// The cache is shared-mutex guarded (reads are concurrent; an insert takes
// the exclusive lock briefly) because ThreadedCluster decodes from many
// server threads against one Code instance. A racing miss computes the
// plan twice and the first insert wins -- plans for the same key are
// identical, so this is only a little wasted work, never wrong data.
//
// Set CAUSALEC_DECODE_PLAN_CACHE=0 to disable caching (every decode then
// runs a fresh elimination); the differential tests use this to pin the
// cached plans against freshly computed ones.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "erasure/code.h"

namespace causalec::erasure {

/// A resolved decode recipe: apply `coeff * (row r of server s's symbol)`
/// for every step, accumulating over the field. `set_mask` records the
/// minimal recovery set the plan decodes from (a subset of the provided
/// mask it was computed for).
template <typename Elem>
struct DecodePlan {
  struct Step {
    NodeId server;
    std::uint32_t row;  // row index within the server's stacked symbol
    Elem coeff;         // nonzero
  };

  std::uint32_t set_mask = 0;
  std::vector<Step> steps;
};

template <typename Elem>
class DecodePlanCache {
 public:
  using Plan = DecodePlan<Elem>;
  using PlanPtr = std::shared_ptr<const Plan>;

  DecodePlanCache() : enabled_(default_enabled()) {}

  /// nullptr on miss. Counts a hit or a miss (only while enabled).
  PlanPtr find(ObjectId object, std::uint32_t provided_mask) const {
    if (!enabled()) return nullptr;
    {
      std::shared_lock lock(mu_);
      const auto it = map_.find(key(object, provided_mask));
      if (it != map_.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }

  /// Inserts and returns the canonical plan for the key (the first insert
  /// wins a race; all racers computed the identical plan anyway).
  PlanPtr insert(ObjectId object, std::uint32_t provided_mask,
                 PlanPtr plan) const {
    if (!enabled()) return plan;
    std::unique_lock lock(mu_);
    const auto it = map_.emplace(key(object, provided_mask),
                                 std::move(plan)).first;
    return it->second;
  }

  PlanCacheStats stats() const {
    PlanCacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    {
      std::shared_lock lock(mu_);
      s.entries = map_.size();
    }
    return s;
  }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void set_enabled(bool enabled) const {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Env gate: CAUSALEC_DECODE_PLAN_CACHE=0 disables new caches.
  static bool default_enabled() {
    const char* env = std::getenv("CAUSALEC_DECODE_PLAN_CACHE");
    return env == nullptr || std::string_view(env) != "0";
  }

 private:
  static std::uint64_t key(ObjectId object, std::uint32_t mask) {
    return (static_cast<std::uint64_t>(object) << 32) | mask;
  }

  mutable std::shared_mutex mu_;
  mutable std::unordered_map<std::uint64_t, PlanPtr> map_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<bool> enabled_;
};

}  // namespace causalec::erasure
