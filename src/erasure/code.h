// The type-erased linear-code interface (Definitions 1-4 of the paper).
//
// A code C(N, K, F) assigns to each server i a linear encoding function
// Phi_i : V^K -> W_i. This interface exposes exactly the operations the
// CausalEC algorithm needs:
//   * encode          -- Phi_i applied to a full object vector
//   * reencode        -- the re-encoding functions Gamma_{i,k} (Def. 4)
//   * decode          -- the recovery functions Psi_S^{(k)} (Def. 2)
//   * recovery_sets   -- the minimal recovery sets R_k
//   * support         -- the object sets X_i (Def. 3)
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "erasure/value.h"

namespace causalec::erasure {

/// A recovery set: servers whose codeword symbols suffice to decode one
/// object. Stored sorted ascending.
using RecoverySet = std::vector<NodeId>;

/// Type-erased view of a repair plan (erasure/repair_plan.h): enough for a
/// consumer holding a CodePtr to pick helpers and account traffic without
/// knowing the field. `fetch_*` counts only rows that actually cross the
/// network; `full_decode_*` is what the classical decode-all baseline would
/// move for the same erasure pattern.
struct RepairPlanSummary {
  std::uint32_t helper_mask = 0;   // servers to contact (may include local)
  std::uint32_t erased_mask = 0;   // the erasure pattern planned for
  std::size_t fetch_rows = 0;      // symbol rows moved over the network
  std::size_t fetch_bytes = 0;     // fetch_rows * value_bytes
  std::size_t full_decode_rows = 0;
  std::size_t full_decode_bytes = 0;
};

/// Counters of the per-(object, server-set) decoder-plan cache (see
/// erasure/plan_cache.h). Codes without a cache report all-zero stats.
struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t entries = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }

  PlanCacheStats& operator+=(const PlanCacheStats& other) {
    hits += other.hits;
    misses += other.misses;
    entries += other.entries;
    return *this;
  }
};

class Code {
 public:
  virtual ~Code() = default;

  /// N: number of servers the code spans.
  virtual std::size_t num_servers() const = 0;
  /// K: number of objects the code stores.
  virtual std::size_t num_objects() const = 0;
  /// Size in bytes of one object value (all objects equal-sized, Sec. 2.2).
  virtual std::size_t value_bytes() const = 0;
  /// Size in bytes of server i's codeword symbol (0 if it stores nothing).
  virtual std::size_t symbol_bytes(NodeId server) const = 0;

  /// All-zero value / symbol of the right size.
  Value zero_value() const { return Value(value_bytes(), 0); }
  Symbol zero_symbol(NodeId server) const {
    return Symbol(symbol_bytes(server), 0);
  }

  /// Phi_i over a full object vector (values.size() == K).
  virtual Symbol encode(NodeId server, std::span<const Value> values) const = 0;

  /// Gamma_{i,k}(symbol, old_value, new_value): transform server i's symbol
  /// from an encoding with object k = old_value to one with object k =
  /// new_value, leaving all other objects untouched. Either value may be
  /// empty(), meaning the zero vector (the paper's bold-0).
  virtual void reencode(NodeId server, Symbol& symbol, ObjectId object,
                        std::span<const std::uint8_t> old_value,
                        std::span<const std::uint8_t> new_value) const = 0;

  /// One pending re-encode of a batch: object `object` goes from old_value
  /// to new_value (either may be empty = the zero vector). The same object
  /// may appear more than once; entries compose in order.
  struct ReencodeEntry {
    ObjectId object;
    std::span<const std::uint8_t> old_value;
    std::span<const std::uint8_t> new_value;
  };

  /// Apply a batch of re-encodes to server i's symbol. Equivalent to
  /// calling reencode() once per entry in order; codes may override to
  /// fuse the batch so each symbol row is touched once per batch instead
  /// of once per entry (LinearCodeT routes through the kernel tier's
  /// fused multi-axpy).
  virtual void reencode_batch(NodeId server, Symbol& symbol,
                              std::span<const ReencodeEntry> entries) const {
    for (const ReencodeEntry& e : entries) {
      reencode(server, symbol, e.object, e.old_value, e.new_value);
    }
  }

  /// Psi_S^{(k)}: decode object `object` from the symbols of the servers in
  /// `servers` (parallel spans). `servers` must contain a recovery set for
  /// the object; extra symbols are permitted and ignored as needed.
  virtual Value decode(ObjectId object, std::span<const NodeId> servers,
                       std::span<const Symbol> symbols) const = 0;

  /// Minimal recovery sets R_k for an object, each sorted ascending,
  /// ordered by (size, lexicographic).
  virtual const std::vector<RecoverySet>& recovery_sets(
      ObjectId object) const = 0;

  /// X_i: the objects server i's encoding function depends on (sorted).
  virtual const std::vector<ObjectId>& support(NodeId server) const = 0;

  /// True iff object is in X_i.
  virtual bool contains(NodeId server, ObjectId object) const = 0;

  /// True iff the (sorted or unsorted) server set can decode the object.
  virtual bool is_recovery_set(ObjectId object,
                               std::span<const NodeId> servers) const = 0;

  /// True iff {server} alone is a recovery set for object (local read).
  virtual bool is_local(NodeId server, ObjectId object) const = 0;

  /// Human-readable description for logs and bench tables.
  virtual std::string describe() const = 0;

  /// Decoder-plan cache counters (zero for codes without a cache).
  virtual PlanCacheStats decode_plan_cache_stats() const { return {}; }

  // -- Repair planning (erasure/repair_plan.h) ------------------------------

  /// Degraded read: the cheapest plan to recover `object` at reader `local`
  /// while the servers in `erased_mask` are unreachable. nullopt when the
  /// erasure pattern makes the object unrecoverable, or when the code has
  /// no repair planner.
  virtual std::optional<RepairPlanSummary> plan_object_repair(
      ObjectId object, std::uint32_t erased_mask, NodeId local) const {
    (void)object, (void)erased_mask, (void)local;
    return std::nullopt;
  }

  /// Node rebuild: the cheapest plan to reconstruct server `failed`'s whole
  /// codeword symbol while the servers in `erased_mask` (which must include
  /// `failed`) are unreachable. nullopt when no surviving helper set spans
  /// the failed symbol, or when the code has no repair planner.
  virtual std::optional<RepairPlanSummary> plan_symbol_repair(
      NodeId failed, std::uint32_t erased_mask) const {
    (void)failed, (void)erased_mask;
    return std::nullopt;
  }

  /// Execute a symbol repair: rebuild `failed`'s symbol from the helpers'
  /// symbols (parallel spans; must cover a plan_symbol_repair helper set).
  /// Codes without a repair planner CHECK-fail.
  virtual Symbol repair_symbol(NodeId failed, std::span<const NodeId> servers,
                               std::span<const Symbol> symbols) const;

  /// Repair-plan cache counters (zero for codes without a cache).
  virtual PlanCacheStats repair_plan_cache_stats() const { return {}; }
};

using CodePtr = std::shared_ptr<const Code>;

}  // namespace causalec::erasure
