// Repair plans and the per-code repair-plan cache (the openec-style
// pluggable coding-pipeline layer; ROADMAP open item 3).
//
// A decode plan (plan_cache.h) answers "how do I read object k from the
// symbols I was handed". A repair plan answers the *planning* question one
// layer up: given an erasure pattern (a set of unreachable servers), which
// surviving symbol rows should move across the network at all, and how do
// the fetched rows combine into the repair target? Two targets exist:
//
//   * object repair  -- serve a degraded read of object k at server `local`
//     while the servers in `erased_mask` are down. The plan names the
//     cheapest surviving recovery set, counting only rows `local` does not
//     already hold.
//   * symbol repair  -- rebuild server f's entire codeword symbol from a
//     helper set of survivors (node rebuild / rejoin catch-up). The plan is
//     a DAG: fetch nodes (one per helper symbol row moved) feeding axpy
//     ops (one program per row of the failed symbol), executed through the
//     runtime-dispatched gf kernels exactly like decode.
//
// Strategies are pluggable per Code instance (and via the CAUSALEC_REPAIR_PLAN
// env override):
//
//   * kMinimalFetch (default) -- minimize fetched rows. For an Azure-LRC
//     data failure this finds the local group (l+1 rows instead of k); for
//     MDS Reed-Solomon it degenerates to full decode, as theory demands.
//   * kFullDecode -- the classical baseline: decode everything from the
//     first surviving full-rank set, then re-encode. Benchmarks pin the
//     gap between the two.
//
// Like decode plans, repair plans are immutable once computed, so they are
// memoized in a shared-mutex cache keyed by (kind, strategy, target,
// erased-mask, local). CAUSALEC_REPAIR_PLAN_CACHE=0 disables memoization
// (every lookup replans); the differential tests use this to pin cached
// plans against fresh eliminations.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "erasure/code.h"

namespace causalec::erasure {

/// How a planner trades fetch traffic against planning generality.
enum class RepairStrategy : std::uint8_t {
  kMinimalFetch = 0,  // fewest symbol rows over the wire
  kFullDecode = 1,    // decode-all-then-reencode baseline
};

/// Env override: CAUSALEC_REPAIR_PLAN=full forces the full-decode baseline;
/// CAUSALEC_REPAIR_PLAN=0/off disables repair planning entirely (consumers
/// fall back to their pre-repair behavior). Anything else: minimal fetch.
enum class RepairPlanMode : std::uint8_t { kOff, kFullDecode, kMinimalFetch };

inline RepairPlanMode repair_plan_mode_from_env() {
  const char* env = std::getenv("CAUSALEC_REPAIR_PLAN");
  if (env == nullptr) return RepairPlanMode::kMinimalFetch;
  const std::string_view v(env);
  if (v == "0" || v == "off") return RepairPlanMode::kOff;
  if (v == "full") return RepairPlanMode::kFullDecode;
  return RepairPlanMode::kMinimalFetch;
}

/// One fetch node of the repair DAG: row `row` of server `server`'s symbol
/// moves to the repairing node.
struct RepairFetch {
  NodeId server;
  std::uint32_t row;

  bool operator==(const RepairFetch&) const = default;
};

/// A symbol-repair recipe: rebuild every row of the failed server's symbol
/// as a linear combination of fetched helper rows.
///   out_row[r] = sum over row_ops[r] of op.coeff * fetches[op.fetch]
template <typename Elem>
struct RepairPlan {
  struct Op {
    std::uint32_t fetch;  // index into `fetches`
    Elem coeff;           // nonzero
  };

  std::uint32_t helper_mask = 0;  // servers contributing fetches
  std::vector<RepairFetch> fetches;
  std::vector<std::vector<Op>> row_ops;  // one program per failed-symbol row
};

template <typename Elem>
class RepairPlanCache {
 public:
  using Plan = RepairPlan<Elem>;
  using PlanPtr = std::shared_ptr<const Plan>;

  RepairPlanCache() : enabled_(default_enabled()) {}

  /// nullopt on miss; the cached plan on a hit (which may itself be a null
  /// PlanPtr -- "no repair exists for this pattern" is a cacheable answer).
  /// Counts a hit or a miss (only while enabled).
  std::optional<PlanPtr> find(std::uint64_t key) const {
    if (!enabled()) return std::nullopt;
    {
      std::shared_lock lock(mu_);
      const auto it = map_.find(key);
      if (it != map_.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }

  /// Inserts and returns the canonical plan for the key (the first insert
  /// wins a race; all racers computed the identical plan anyway). The plan
  /// may be nullptr -- "no repair exists for this pattern" is itself a
  /// cacheable answer.
  PlanPtr insert(std::uint64_t key, PlanPtr plan) const {
    if (!enabled()) return plan;
    std::unique_lock lock(mu_);
    const auto it = map_.emplace(key, std::move(plan)).first;
    return it->second;
  }

  PlanCacheStats stats() const {
    PlanCacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    {
      std::shared_lock lock(mu_);
      s.entries = map_.size();
    }
    return s;
  }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void set_enabled(bool enabled) const {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Env gate: CAUSALEC_REPAIR_PLAN_CACHE=0 disables new caches.
  static bool default_enabled() {
    const char* env = std::getenv("CAUSALEC_REPAIR_PLAN_CACHE");
    return env == nullptr || std::string_view(env) != "0";
  }

  /// Cache key layout, shared by object and symbol lookups:
  ///   kind(1) | strategy(1) | target(8) | local(8) | erased_mask(16).
  static std::uint64_t key(bool symbol_kind, RepairStrategy strategy,
                           std::uint32_t target, std::uint32_t local,
                           std::uint32_t erased_mask) {
    return (static_cast<std::uint64_t>(symbol_kind) << 63) |
           (static_cast<std::uint64_t>(strategy) << 62) |
           (static_cast<std::uint64_t>(target & 0xFF) << 32) |
           (static_cast<std::uint64_t>(local & 0xFF) << 24) |
           static_cast<std::uint64_t>(erased_mask & 0xFFFF);
  }

 private:
  mutable std::shared_mutex mu_;
  mutable std::unordered_map<std::uint64_t, PlanPtr> map_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<bool> enabled_;
};

}  // namespace causalec::erasure
