// Concrete generator-matrix linear codes over a field F.
//
// Each server i is assigned an m_i x K coefficient matrix C_i; its codeword
// symbol is the stack of the m_i linear combinations sum_k C_i[r][k] * x_k.
// m_i = 1 is the common case (one combination per server, e.g. Reed-Solomon
// or the paper's cross-object examples); m_i > 1 expresses partial
// replication and other multi-symbol layouts; m_i = 0 means the server
// stores nothing.
//
// Minimal recovery sets are enumerated by Gaussian elimination at
// construction time; the decoding coefficients themselves are computed
// lazily, once per (object, provided-server mask), and memoized in a
// DecodePlanCache (erasure/plan_cache.h). Re-encode coefficient rows
// (Gamma_{i,k}) are flattened per (server, object) at construction.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>
#include <sstream>
#include <vector>

#include "common/expect.h"
#include "erasure/code.h"
#include "erasure/plan_cache.h"
#include "erasure/repair_plan.h"
#include "gf/field.h"
#include "gf/vector_ops.h"
#include "linalg/gaussian.h"
#include "linalg/matrix.h"

namespace causalec::erasure {

namespace detail {

/// Pack/unpack field elements <-> little-endian bytes.
template <gf::Field F>
void unpack(std::span<const std::uint8_t> bytes,
            std::span<typename F::Elem> out) {
  constexpr std::size_t eb = F::kElemBytes;
  CEC_DCHECK(bytes.size() == out.size() * eb);
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::uint64_t v = 0;
    for (std::size_t b = 0; b < eb; ++b) {
      v |= static_cast<std::uint64_t>(bytes[i * eb + b]) << (8 * b);
    }
    out[i] = static_cast<typename F::Elem>(v);
  }
}

template <gf::Field F>
void pack(std::span<const typename F::Elem> elems,
          std::span<std::uint8_t> bytes) {
  constexpr std::size_t eb = F::kElemBytes;
  CEC_DCHECK(bytes.size() == elems.size() * eb);
  for (std::size_t i = 0; i < elems.size(); ++i) {
    auto v = static_cast<std::uint64_t>(elems[i]);
    for (std::size_t b = 0; b < eb; ++b) {
      bytes[i * eb + b] = static_cast<std::uint8_t>(v >> (8 * b));
    }
  }
}

}  // namespace detail

template <gf::Field F>
class LinearCodeT final : public Code {
 public:
  using Matrix = linalg::Matrix<F>;
  using Elem = typename F::Elem;
  using Plan = DecodePlan<Elem>;
  using PlanPtr = std::shared_ptr<const Plan>;

  /// One coefficient matrix per server; every matrix must have K columns.
  /// value_bytes must be a multiple of the field element size.
  LinearCodeT(std::vector<Matrix> server_matrices, std::size_t value_bytes,
              std::string name = "linear-code")
      : matrices_(std::move(server_matrices)),
        value_bytes_(value_bytes),
        name_(std::move(name)) {
    CEC_CHECK(!matrices_.empty());
    CEC_CHECK_MSG(matrices_.size() <= 16,
                  "recovery-set enumeration supports at most 16 servers");
    k_ = matrices_.front().cols();
    CEC_CHECK(k_ >= 1 && k_ <= 63);
    CEC_CHECK(value_bytes_ > 0 && value_bytes_ % F::kElemBytes == 0);
    elems_per_value_ = value_bytes_ / F::kElemBytes;
    for (const auto& m : matrices_) CEC_CHECK(m.cols() == k_);
    build_stacked();
    build_supports();
    build_reencode_plans();
    build_recovery_sets();
  }

  /// Convenience: one row per server, given as a stacked N x K matrix.
  static std::shared_ptr<LinearCodeT> one_row_per_server(
      const Matrix& stacked, std::size_t value_bytes,
      std::string name = "linear-code") {
    std::vector<Matrix> per_server;
    per_server.reserve(stacked.rows());
    for (std::size_t i = 0; i < stacked.rows(); ++i) {
      Matrix row(1, stacked.cols());
      for (std::size_t j = 0; j < stacked.cols(); ++j) {
        row(0, j) = stacked(i, j);
      }
      per_server.push_back(std::move(row));
    }
    return std::make_shared<LinearCodeT>(std::move(per_server), value_bytes,
                                         std::move(name));
  }

  std::size_t num_servers() const override { return matrices_.size(); }
  std::size_t num_objects() const override { return k_; }
  std::size_t value_bytes() const override { return value_bytes_; }

  std::size_t symbol_bytes(NodeId server) const override {
    return matrix(server).rows() * value_bytes_;
  }

  Symbol encode(NodeId server, std::span<const Value> values) const override {
    CEC_CHECK(values.size() == k_);
    const Matrix& c = matrix(server);
    Symbol out(symbol_bytes(server), 0);
    std::vector<Elem> acc(elems_per_value_);
    std::vector<Elem> val(elems_per_value_);
    std::vector<gf::AxpyTerm<F>> terms;
    for (std::size_t r = 0; r < c.rows(); ++r) {
      auto out_row =
          out.mutable_span().subspan(r * value_bytes_, value_bytes_);
      if constexpr (std::is_same_v<F, gf::GF256>) {
        // GF(2^8): fused multi-axpy straight from the object values into
        // the (already zeroed) output row, no unpack/pack.
        terms.clear();
        for (std::size_t k = 0; k < k_; ++k) {
          if (c(r, k) == F::zero) continue;
          CEC_CHECK(values[k].size() == value_bytes_);
          terms.push_back({c(r, k), values[k].span()});
        }
        gf::axpy_batch<F>(out_row, std::span<const gf::AxpyTerm<F>>(terms));
      } else {
        gf::set_zero<F>(std::span<Elem>(acc));
        for (std::size_t k = 0; k < k_; ++k) {
          if (c(r, k) == F::zero) continue;
          CEC_CHECK(values[k].size() == value_bytes_);
          detail::unpack<F>(values[k], std::span<Elem>(val));
          gf::axpy<F>(std::span<Elem>(acc), c(r, k),
                      std::span<const Elem>(val));
        }
        detail::pack<F>(std::span<const Elem>(acc), out_row);
      }
    }
    return out;
  }

  void reencode(NodeId server, Symbol& symbol, ObjectId object,
                std::span<const std::uint8_t> old_value,
                std::span<const std::uint8_t> new_value) const override {
    CEC_CHECK(server < num_servers());
    CEC_CHECK(symbol.size() == symbol_bytes(server));
    CEC_CHECK(object < k_);
    CEC_CHECK(old_value.empty() || old_value.size() == value_bytes_);
    CEC_CHECK(new_value.empty() || new_value.size() == value_bytes_);
    const auto& steps = reencode_plans_[server][object];
    if (steps.empty()) return;  // object not in X_i: symbol unchanged
    // delta = new - old over F^d.
    std::vector<Elem> delta(elems_per_value_, F::zero);
    std::vector<Elem> tmp(elems_per_value_);
    if (!new_value.empty()) {
      detail::unpack<F>(new_value, std::span<Elem>(delta));
    }
    if (!old_value.empty()) {
      detail::unpack<F>(old_value, std::span<Elem>(tmp));
      gf::sub_into<F>(std::span<Elem>(delta), std::span<const Elem>(tmp));
    }
    if (gf::is_zero<F>(std::span<const Elem>(delta))) return;
    std::vector<Elem> row(elems_per_value_);
    const std::span<std::uint8_t> symbol_bytes = symbol.mutable_span();
    for (const ReencodeStep& step : steps) {
      auto row_bytes =
          symbol_bytes.subspan(step.row * value_bytes_, value_bytes_);
      detail::unpack<F>(row_bytes, std::span<Elem>(row));
      gf::axpy<F>(std::span<Elem>(row), step.coeff,
                  std::span<const Elem>(delta));
      detail::pack<F>(std::span<const Elem>(row), row_bytes);
    }
  }

  void reencode_batch(NodeId server, Symbol& symbol,
                      std::span<const ReencodeEntry> entries) const override {
    if (entries.size() <= 1) {
      for (const ReencodeEntry& e : entries) {
        reencode(server, symbol, e.object, e.old_value, e.new_value);
      }
      return;
    }
    CEC_CHECK(server < num_servers());
    CEC_CHECK(symbol.size() == symbol_bytes(server));
    const auto& plans = reencode_plans_[server];
    for (const ReencodeEntry& e : entries) {
      CEC_CHECK(e.object < k_);
      CEC_CHECK(e.old_value.empty() || e.old_value.size() == value_bytes_);
      CEC_CHECK(e.new_value.empty() || e.new_value.size() == value_bytes_);
    }
    const std::size_t num_rows = matrix(server).rows();
    const std::span<std::uint8_t> sym = symbol.mutable_span();

    if constexpr (std::is_same_v<F, gf::GF256>) {
      // GF(2^8): values already are element vectors, and in characteristic
      // 2 coeff * (new - old) == coeff * new + coeff * old, so each entry
      // feeds its old and new bytes to the fused multi-axpy directly -- no
      // delta buffer, no unpack/pack, and each destination row is streamed
      // once per batch instead of once per entry.
      std::vector<gf::AxpyTerm<F>> terms;
      terms.reserve(2 * entries.size());
      for (std::size_t r = 0; r < num_rows; ++r) {
        terms.clear();
        for (const ReencodeEntry& e : entries) {
          for (const ReencodeStep& step : plans[e.object]) {
            if (step.row != r) continue;
            if (!e.new_value.empty()) {
              terms.push_back({step.coeff, e.new_value});
            }
            if (!e.old_value.empty()) {
              terms.push_back({step.coeff, e.old_value});
            }
          }
        }
        if (terms.empty()) continue;
        gf::axpy_batch<F>(sym.subspan(r * value_bytes_, value_bytes_),
                          std::span<const gf::AxpyTerm<F>>(terms));
      }
      return;
    } else {
      // Generic fields: materialize delta = new - old per entry (packing
      // is not the identity), then fuse the per-row axpys over the
      // unpacked row.
      std::vector<std::vector<Elem>> deltas;
      std::vector<const std::vector<ReencodeStep>*> steps;
      deltas.reserve(entries.size());
      steps.reserve(entries.size());
      std::vector<Elem> tmp(elems_per_value_);
      for (const ReencodeEntry& e : entries) {
        if (plans[e.object].empty()) continue;  // object not in X_i
        std::vector<Elem> delta(elems_per_value_, F::zero);
        if (!e.new_value.empty()) {
          detail::unpack<F>(e.new_value, std::span<Elem>(delta));
        }
        if (!e.old_value.empty()) {
          detail::unpack<F>(e.old_value, std::span<Elem>(tmp));
          gf::sub_into<F>(std::span<Elem>(delta), std::span<const Elem>(tmp));
        }
        if (gf::is_zero<F>(std::span<const Elem>(delta))) continue;
        deltas.push_back(std::move(delta));
        steps.push_back(&plans[e.object]);
      }
      if (deltas.empty()) return;
      std::vector<Elem> row(elems_per_value_);
      std::vector<gf::AxpyTerm<F>> terms;
      terms.reserve(deltas.size());
      for (std::size_t r = 0; r < num_rows; ++r) {
        terms.clear();
        for (std::size_t i = 0; i < deltas.size(); ++i) {
          for (const ReencodeStep& step : *steps[i]) {
            if (step.row != r) continue;
            terms.push_back({step.coeff, std::span<const Elem>(deltas[i])});
          }
        }
        if (terms.empty()) continue;
        auto row_bytes = sym.subspan(r * value_bytes_, value_bytes_);
        detail::unpack<F>(row_bytes, std::span<Elem>(row));
        gf::axpy_batch<F>(std::span<Elem>(row),
                          std::span<const gf::AxpyTerm<F>>(terms));
        detail::pack<F>(std::span<const Elem>(row), row_bytes);
      }
    }
  }

  Value decode(ObjectId object, std::span<const NodeId> servers,
               std::span<const Symbol> symbols) const override {
    CEC_CHECK(object < k_);
    CEC_CHECK(servers.size() == symbols.size());
    std::uint32_t mask = 0;
    for (NodeId s : servers) {
      CEC_CHECK(s < num_servers());
      mask |= 1u << s;
    }
    const PlanPtr plan = decode_plan(object, mask);
    return apply_plan(*plan, servers, symbols);
  }

  const std::vector<RecoverySet>& recovery_sets(
      ObjectId object) const override {
    CEC_CHECK(object < k_);
    return recovery_sets_[object];
  }

  const std::vector<ObjectId>& support(NodeId server) const override {
    CEC_CHECK(server < num_servers());
    return supports_[server];
  }

  bool contains(NodeId server, ObjectId object) const override {
    CEC_CHECK(server < num_servers() && object < k_);
    return support_masks_[server] >> object & 1;
  }

  bool is_recovery_set(ObjectId object,
                       std::span<const NodeId> servers) const override {
    CEC_CHECK(object < k_);
    std::uint32_t mask = 0;
    for (NodeId s : servers) {
      CEC_CHECK(s < num_servers());
      mask |= 1u << s;
    }
    for (std::uint32_t minimal : recovery_masks_[object]) {
      if ((mask & minimal) == minimal) return true;
    }
    return false;
  }

  bool is_local(NodeId server, ObjectId object) const override {
    CEC_CHECK(server < num_servers() && object < k_);
    return local_[object] >> server & 1;
  }

  std::string describe() const override {
    std::ostringstream oss;
    oss << name_ << " (N=" << num_servers() << ", K=" << k_
        << ", B=" << value_bytes_ << ")";
    return oss.str();
  }

  PlanCacheStats decode_plan_cache_stats() const override {
    return plan_cache_.stats();
  }

  /// Direct coefficient access for analytics and tests.
  const Matrix& matrix(NodeId server) const {
    CEC_CHECK(server < matrices_.size());
    return matrices_[server];
  }

  /// The plan decode() would use for (object, provided-server mask):
  /// cache lookup, lazily computing and inserting on a miss. CHECK-fails
  /// when the mask contains no recovery set.
  PlanPtr decode_plan(ObjectId object, std::uint32_t provided_mask) const {
    CEC_CHECK(object < k_);
    if (PlanPtr cached = plan_cache_.find(object, provided_mask)) {
      return cached;
    }
    PlanPtr plan = compute_plan_fresh(object, provided_mask);
    CEC_CHECK_MSG(plan != nullptr,
                  "decode: servers do not form a recovery set for X"
                      << object);
    return plan_cache_.insert(object, provided_mask, std::move(plan));
  }

  /// Fresh Gaussian elimination, bypassing the cache entirely (the
  /// differential tests pin cached plans against this). nullptr when the
  /// mask contains no recovery set.
  PlanPtr compute_plan_fresh(ObjectId object,
                             std::uint32_t provided_mask) const {
    CEC_CHECK(object < k_);
    for (std::uint32_t minimal : recovery_masks_[object]) {
      if ((provided_mask & minimal) != minimal) continue;
      return std::make_shared<const Plan>(build_plan(object, minimal));
    }
    return nullptr;
  }

  /// Test/tooling control of the cache (per code instance).
  void set_plan_cache_enabled(bool enabled) const {
    plan_cache_.set_enabled(enabled);
  }

  // -- Repair planning (erasure/repair_plan.h) ------------------------------

  using RepairPlanT = RepairPlan<Elem>;
  using RepairPlanPtr = std::shared_ptr<const RepairPlanT>;

  std::optional<RepairPlanSummary> plan_object_repair(
      ObjectId object, std::uint32_t erased_mask,
      NodeId local) const override {
    const RepairPlanMode mode = repair_mode();
    if (mode == RepairPlanMode::kOff) return std::nullopt;
    const RepairStrategy strategy = mode == RepairPlanMode::kFullDecode
                                        ? RepairStrategy::kFullDecode
                                        : RepairStrategy::kMinimalFetch;
    const RepairPlanPtr plan =
        object_repair_plan(object, erased_mask, local, strategy);
    if (plan == nullptr) return std::nullopt;
    const RepairPlanPtr full = object_repair_plan(
        object, erased_mask, local, RepairStrategy::kFullDecode);
    return summarize(*plan, full.get(), erased_mask);
  }

  std::optional<RepairPlanSummary> plan_symbol_repair(
      NodeId failed, std::uint32_t erased_mask) const override {
    const RepairPlanMode mode = repair_mode();
    if (mode == RepairPlanMode::kOff) return std::nullopt;
    const RepairStrategy strategy = mode == RepairPlanMode::kFullDecode
                                        ? RepairStrategy::kFullDecode
                                        : RepairStrategy::kMinimalFetch;
    const RepairPlanPtr plan = symbol_repair_plan(failed, erased_mask,
                                                  strategy);
    if (plan == nullptr) return std::nullopt;
    const RepairPlanPtr full = symbol_repair_plan(
        failed, erased_mask, RepairStrategy::kFullDecode);
    return summarize(*plan, full.get(), erased_mask);
  }

  Symbol repair_symbol(NodeId failed, std::span<const NodeId> servers,
                       std::span<const Symbol> symbols) const override {
    CEC_CHECK(failed < num_servers());
    CEC_CHECK(servers.size() == symbols.size());
    std::uint32_t provided = 0;
    for (NodeId s : servers) {
      CEC_CHECK(s < num_servers());
      CEC_CHECK_MSG(s != failed, "repair_symbol: failed server provided");
      provided |= 1u << s;
    }
    const std::uint32_t erased = all_servers_mask() & ~provided;
    const RepairPlanMode mode = repair_mode();
    const RepairStrategy strategy = mode == RepairPlanMode::kFullDecode
                                        ? RepairStrategy::kFullDecode
                                        : RepairStrategy::kMinimalFetch;
    const RepairPlanPtr plan = symbol_repair_plan(failed, erased, strategy);
    CEC_CHECK_MSG(plan != nullptr,
                  "repair_symbol: survivors cannot rebuild server "
                      << failed);
    return apply_repair_plan(*plan, failed, servers, symbols);
  }

  PlanCacheStats repair_plan_cache_stats() const override {
    return repair_cache_.stats();
  }

  /// Cached lookup of the symbol-repair plan for (failed, erased, strategy):
  /// the DAG rebuilding every row of `failed`'s symbol from a surviving
  /// helper set. nullptr when no survivors span the failed symbol.
  RepairPlanPtr symbol_repair_plan(NodeId failed, std::uint32_t erased_mask,
                                   RepairStrategy strategy) const {
    CEC_CHECK(failed < num_servers());
    const std::uint64_t key = RepairPlanCache<Elem>::key(
        /*symbol_kind=*/true, strategy, failed, failed, erased_mask);
    if (const auto cached = repair_cache_.find(key)) return *cached;
    return repair_cache_.insert(
        key, compute_symbol_repair_fresh(failed, erased_mask, strategy));
  }

  /// Cached lookup of the object-repair plan for (object, erased, local,
  /// strategy): a fetch-only plan (row_ops empty -- decode() executes the
  /// math once the fetched symbols arrive). nullptr when the erasure
  /// pattern leaves no surviving recovery set.
  RepairPlanPtr object_repair_plan(ObjectId object, std::uint32_t erased_mask,
                                   NodeId local,
                                   RepairStrategy strategy) const {
    CEC_CHECK(object < k_);
    CEC_CHECK(local < num_servers());
    const std::uint64_t key = RepairPlanCache<Elem>::key(
        /*symbol_kind=*/false, strategy, object, local, erased_mask);
    if (const auto cached = repair_cache_.find(key)) return *cached;
    return repair_cache_.insert(
        key, compute_object_repair_fresh(object, erased_mask, local,
                                         strategy));
  }

  /// Fresh symbol-repair planning, bypassing the cache (the differential
  /// tests pin cached plans against this). Helper candidates are enumerated
  /// over the survivors in (total rows, popcount, value) order, so the
  /// first spanning set is fetch-minimal; kMinimalFetch then drops any
  /// fetched row no output program references, kFullDecode instead takes
  /// the first full-rank set (decode everything, then re-encode) and keeps
  /// all of its rows.
  RepairPlanPtr compute_symbol_repair_fresh(NodeId failed,
                                            std::uint32_t erased_mask,
                                            RepairStrategy strategy) const {
    CEC_CHECK(failed < num_servers());
    CEC_CHECK((erased_mask & ~all_servers_mask()) == 0);
    const std::uint32_t available =
        all_servers_mask() & ~erased_mask & ~(1u << failed);
    const Matrix& target = matrices_[failed];
    if (target.rows() == 0) {
      // The failed server stores nothing: an empty plan rebuilds it.
      auto plan = std::make_shared<RepairPlanT>();
      return plan;
    }
    const std::size_t min_rows = strategy == RepairStrategy::kFullDecode
                                     ? k_
                                     : linalg::rank<F>(target);
    for (const std::uint32_t mask : candidate_masks(available)) {
      if (rows_in_mask(mask) < min_rows) continue;
      const Matrix sub = stack_subset(mask);
      if (strategy == RepairStrategy::kFullDecode) {
        if (linalg::rank<F>(sub) != k_) continue;
      } else {
        // Spans iff appending the failed rows does not raise the rank.
        Matrix joint(sub.rows() + target.rows(), k_);
        for (std::size_t r = 0; r < sub.rows(); ++r) {
          for (std::size_t c = 0; c < k_; ++c) joint(r, c) = sub(r, c);
        }
        for (std::size_t r = 0; r < target.rows(); ++r) {
          for (std::size_t c = 0; c < k_; ++c) {
            joint(sub.rows() + r, c) = target(r, c);
          }
        }
        if (linalg::rank<F>(joint) != linalg::rank<F>(sub)) continue;
      }
      return build_symbol_repair_plan(failed, mask, strategy);
    }
    return nullptr;
  }

  /// Fresh object-repair planning, bypassing the cache. kMinimalFetch picks
  /// the surviving recovery set with the fewest rows `local` does not
  /// already hold; kFullDecode takes the first surviving set in the stored
  /// (size, lexicographic) order.
  RepairPlanPtr compute_object_repair_fresh(ObjectId object,
                                            std::uint32_t erased_mask,
                                            NodeId local,
                                            RepairStrategy strategy) const {
    CEC_CHECK(object < k_);
    CEC_CHECK((erased_mask & ~all_servers_mask()) == 0);
    const std::uint32_t chosen = [&]() -> std::uint32_t {
      std::uint32_t best = 0;
      std::size_t best_cost = 0;
      for (const std::uint32_t mask : recovery_masks_[object]) {
        if ((mask & erased_mask) != 0) continue;
        if (strategy == RepairStrategy::kFullDecode) return mask;
        const std::size_t cost = rows_in_mask(mask & ~(1u << local));
        if (best == 0 || cost < best_cost) {
          best = mask;
          best_cost = cost;
        }
      }
      return best;
    }();
    if (chosen == 0) return nullptr;
    auto plan = std::make_shared<RepairPlanT>();
    plan->helper_mask = chosen;
    for (NodeId s = 0; s < num_servers(); ++s) {
      if (!(chosen >> s & 1) || s == local) continue;
      for (std::size_t r = 0; r < matrices_[s].rows(); ++r) {
        plan->fetches.push_back({s, static_cast<std::uint32_t>(r)});
      }
    }
    return plan;
  }

  /// Execute a symbol-repair plan against provided helper symbols.
  Symbol apply_repair_plan(const RepairPlanT& plan, NodeId failed,
                           std::span<const NodeId> servers,
                           std::span<const Symbol> symbols) const {
    Symbol out(symbol_bytes(failed), 0);
    std::vector<Elem> acc(elems_per_value_);
    std::vector<Elem> row(elems_per_value_);
    std::vector<gf::AxpyTerm<F>> terms;
    for (std::size_t r = 0; r < plan.row_ops.size(); ++r) {
      const auto fetched_row = [&](const typename RepairPlanT::Op& op)
          -> std::span<const std::uint8_t> {
        const RepairFetch& fetch = plan.fetches[op.fetch];
        std::size_t pos = servers.size();
        for (std::size_t i = 0; i < servers.size(); ++i) {
          if (servers[i] == fetch.server) {
            pos = i;
            break;
          }
        }
        CEC_CHECK_MSG(pos < servers.size(),
                      "repair: helper " << fetch.server << " not provided");
        const Symbol& sym = symbols[pos];
        CEC_CHECK_MSG(sym.size() == symbol_bytes(fetch.server),
                      "repair: bad symbol size from server " << fetch.server);
        return std::span<const std::uint8_t>(sym).subspan(
            fetch.row * value_bytes_, value_bytes_);
      };
      auto out_row =
          out.mutable_span().subspan(r * value_bytes_, value_bytes_);
      if constexpr (std::is_same_v<F, gf::GF256>) {
        // GF(2^8): fused multi-axpy straight from the helper symbol rows
        // into the output row (already zeroed).
        terms.clear();
        for (const auto& op : plan.row_ops[r]) {
          terms.push_back({op.coeff, fetched_row(op)});
        }
        gf::axpy_batch<F>(out_row, std::span<const gf::AxpyTerm<F>>(terms));
      } else {
        gf::set_zero<F>(std::span<Elem>(acc));
        for (const auto& op : plan.row_ops[r]) {
          detail::unpack<F>(fetched_row(op), std::span<Elem>(row));
          gf::axpy<F>(std::span<Elem>(acc), op.coeff,
                      std::span<const Elem>(row));
        }
        detail::pack<F>(std::span<const Elem>(acc), out_row);
      }
    }
    return out;
  }

  /// Test/tooling control of the repair cache (per code instance).
  void set_repair_plan_cache_enabled(bool enabled) const {
    repair_cache_.set_enabled(enabled);
  }

  RepairPlanMode repair_mode() const {
    return repair_mode_.load(std::memory_order_relaxed);
  }

  /// Test seam: override the CAUSALEC_REPAIR_PLAN env mode per instance.
  void set_repair_mode_for_testing(RepairPlanMode mode) const {
    repair_mode_.store(mode, std::memory_order_relaxed);
  }

 private:
  struct ReencodeStep {
    std::uint32_t row;  // row of the server's symbol
    Elem coeff;         // C_i[row][object], nonzero
  };

  std::uint32_t all_servers_mask() const {
    return (1u << num_servers()) - 1;
  }

  std::size_t locate_server(std::span<const NodeId> servers,
                            NodeId server) const {
    for (std::size_t i = 0; i < servers.size(); ++i) {
      if (servers[i] == server) return i;
    }
    CEC_CHECK_MSG(false, "server " << server << " not provided");
    return servers.size();
  }

  std::size_t rows_in_mask(std::uint32_t mask) const {
    std::size_t rows = 0;
    for (NodeId s = 0; s < num_servers(); ++s) {
      if (mask >> s & 1) rows += matrices_[s].rows();
    }
    return rows;
  }

  /// All nonzero submasks of `available` ordered by (total rows, popcount,
  /// value), so the first spanning candidate is fetch-minimal.
  std::vector<std::uint32_t> candidate_masks(std::uint32_t available) const {
    std::vector<std::uint32_t> masks;
    for (std::uint32_t m = available; m != 0; m = (m - 1) & available) {
      masks.push_back(m);
    }
    std::sort(masks.begin(), masks.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                const std::size_t ra = rows_in_mask(a), rb = rows_in_mask(b);
                if (ra != rb) return ra < rb;
                const int pa = std::popcount(a), pb = std::popcount(b);
                return pa != pb ? pa < pb : a < b;
              });
    return masks;
  }

  /// Express every row of the failed symbol in the helper set's row space
  /// and flatten the coefficients into the fetch/axpy DAG. kMinimalFetch
  /// drops fetched rows no output program references; kFullDecode keeps
  /// every row of the set (the decode-all baseline pays for all of them).
  RepairPlanPtr build_symbol_repair_plan(NodeId failed, std::uint32_t mask,
                                         RepairStrategy strategy) const {
    const Matrix sub = stack_subset(mask);
    const Matrix& target = matrices_[failed];
    std::vector<RepairFetch> rows;
    for (NodeId s = 0; s < num_servers(); ++s) {
      if (!(mask >> s & 1)) continue;
      for (std::size_t r = 0; r < matrices_[s].rows(); ++r) {
        rows.push_back({s, static_cast<std::uint32_t>(r)});
      }
    }
    std::vector<bool> used(rows.size(), false);
    std::vector<std::vector<std::pair<std::uint32_t, Elem>>> programs(
        target.rows());
    std::vector<Elem> t(k_);
    for (std::size_t r = 0; r < target.rows(); ++r) {
      for (std::size_t c = 0; c < k_; ++c) t[c] = target(r, c);
      const auto lambda = linalg::express_in_row_space<F>(
          sub, std::span<const Elem>(t));
      CEC_CHECK_MSG(lambda.has_value(),
                    "repair plan: candidate helper set lost its span");
      for (std::size_t i = 0; i < lambda->size(); ++i) {
        if ((*lambda)[i] == F::zero) continue;
        programs[r].push_back({static_cast<std::uint32_t>(i), (*lambda)[i]});
        used[i] = true;
      }
    }
    auto plan = std::make_shared<RepairPlanT>();
    const bool trim = strategy == RepairStrategy::kMinimalFetch;
    std::vector<std::uint32_t> remap(rows.size(), 0);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (!trim || used[i]) {
        remap[i] = static_cast<std::uint32_t>(plan->fetches.size());
        plan->fetches.push_back(rows[i]);
        plan->helper_mask |= 1u << rows[i].server;
      }
    }
    plan->row_ops.resize(target.rows());
    for (std::size_t r = 0; r < target.rows(); ++r) {
      for (const auto& [i, coeff] : programs[r]) {
        plan->row_ops[r].push_back({remap[i], coeff});
      }
    }
    return plan;
  }

  RepairPlanSummary summarize(const RepairPlanT& plan,
                              const RepairPlanT* full,
                              std::uint32_t erased_mask) const {
    RepairPlanSummary s;
    s.helper_mask = plan.helper_mask;
    s.erased_mask = erased_mask;
    s.fetch_rows = plan.fetches.size();
    s.fetch_bytes = s.fetch_rows * value_bytes_;
    s.full_decode_rows = full != nullptr ? full->fetches.size()
                                         : s.fetch_rows;
    s.full_decode_bytes = s.full_decode_rows * value_bytes_;
    return s;
  }

  void build_stacked() {
    std::size_t total_rows = 0;
    for (const auto& m : matrices_) total_rows += m.rows();
    stacked_ = Matrix(total_rows, k_);
    std::size_t r = 0;
    for (const auto& m : matrices_) {
      for (std::size_t lr = 0; lr < m.rows(); ++lr, ++r) {
        for (std::size_t c = 0; c < k_; ++c) stacked_(r, c) = m(lr, c);
      }
    }
  }

  void build_supports() {
    supports_.resize(num_servers());
    support_masks_.assign(num_servers(), 0);
    for (NodeId s = 0; s < num_servers(); ++s) {
      const Matrix& m = matrices_[s];
      for (ObjectId k = 0; k < k_; ++k) {
        bool nonzero = false;
        for (std::size_t r = 0; r < m.rows(); ++r) {
          if (m(r, k) != F::zero) {
            nonzero = true;
            break;
          }
        }
        if (nonzero) {
          supports_[s].push_back(k);
          support_masks_[s] |= 1ull << k;
        }
      }
    }
  }

  /// Gamma_{i,k} flattened: the nonzero column-k coefficients of each
  /// server matrix, bound to their rows, so reencode() touches exactly the
  /// affected symbol rows without scanning the matrix.
  void build_reencode_plans() {
    reencode_plans_.resize(num_servers());
    for (NodeId s = 0; s < num_servers(); ++s) {
      const Matrix& m = matrices_[s];
      reencode_plans_[s].resize(k_);
      for (ObjectId k = 0; k < k_; ++k) {
        for (std::size_t r = 0; r < m.rows(); ++r) {
          if (m(r, k) == F::zero) continue;
          reencode_plans_[s][k].push_back(
              {static_cast<std::uint32_t>(r), m(r, k)});
        }
      }
    }
  }

  /// Stack the rows of the servers in `mask` (server ascending order).
  Matrix stack_subset(std::uint32_t mask) const {
    std::size_t rows = 0;
    for (NodeId s = 0; s < num_servers(); ++s) {
      if (mask >> s & 1) rows += matrices_[s].rows();
    }
    Matrix out(rows, k_);
    std::size_t r = 0;
    for (NodeId s = 0; s < num_servers(); ++s) {
      if (!(mask >> s & 1)) continue;
      const Matrix& m = matrices_[s];
      for (std::size_t lr = 0; lr < m.rows(); ++lr, ++r) {
        for (std::size_t c = 0; c < k_; ++c) out(r, c) = m(lr, c);
      }
    }
    return out;
  }

  void build_recovery_sets() {
    const std::size_t n = num_servers();
    recovery_sets_.resize(k_);
    recovery_masks_.resize(k_);
    local_.assign(k_, 0);
    // Candidate masks sorted by popcount then value -> minimal sets found
    // in (size, lexicographic-ish) order; supersets of found sets skipped.
    std::vector<std::uint32_t> masks;
    masks.reserve((1u << n) - 1);
    for (std::uint32_t m = 1; m < (1u << n); ++m) masks.push_back(m);
    std::sort(masks.begin(), masks.end(), [](std::uint32_t a, std::uint32_t b) {
      const int pa = std::popcount(a), pb = std::popcount(b);
      return pa != pb ? pa < pb : a < b;
    });

    std::vector<Elem> target(k_);
    for (ObjectId obj = 0; obj < k_; ++obj) {
      std::fill(target.begin(), target.end(), F::zero);
      target[obj] = F::one;
      for (std::uint32_t mask : masks) {
        bool superset = false;
        for (std::uint32_t f : recovery_masks_[obj]) {
          if ((mask & f) == f) {
            superset = true;
            break;
          }
        }
        if (superset) continue;
        const Matrix sub = stack_subset(mask);
        if (!linalg::in_row_space<F>(sub, std::span<const Elem>(target))) {
          continue;
        }
        recovery_masks_[obj].push_back(mask);
        RecoverySet servers;
        for (NodeId s = 0; s < n; ++s) {
          if (mask >> s & 1) servers.push_back(s);
        }
        if (servers.size() == 1) local_[obj] |= 1ull << servers[0];
        recovery_sets_[obj].push_back(std::move(servers));
      }
      CEC_CHECK_MSG(!recovery_sets_[obj].empty(),
                    "object X" << obj << " is not recoverable from any "
                               << "subset: code is not a storage code");
    }
  }

  /// One Gaussian elimination: lambda * stacked(minimal_mask) = e_object,
  /// flattened to the nonzero (server, row, coeff) steps.
  Plan build_plan(ObjectId object, std::uint32_t minimal_mask) const {
    std::vector<Elem> target(k_, F::zero);
    target[object] = F::one;
    const Matrix sub = stack_subset(minimal_mask);
    const auto lambda = linalg::express_in_row_space<F>(
        sub, std::span<const Elem>(target));
    CEC_CHECK_MSG(lambda.has_value(),
                  "decode plan: enumerated recovery set lost its rank");
    Plan plan;
    plan.set_mask = minimal_mask;
    std::size_t lambda_idx = 0;
    for (NodeId s = 0; s < num_servers(); ++s) {
      if (!(minimal_mask >> s & 1)) continue;
      for (std::size_t r = 0; r < matrices_[s].rows(); ++r, ++lambda_idx) {
        const Elem coeff = (*lambda)[lambda_idx];
        if (coeff == F::zero) continue;
        plan.steps.push_back({s, static_cast<std::uint32_t>(r), coeff});
      }
    }
    CEC_DCHECK(lambda_idx == lambda->size());
    return plan;
  }

  Value apply_plan(const Plan& plan, std::span<const NodeId> servers,
                   std::span<const Symbol> symbols) const {
    if constexpr (std::is_same_v<F, gf::GF256>) {
      // GF(2^8): feed the symbol rows to the fused multi-axpy in place --
      // no unpack, and the accumulator is written once per chunk instead
      // of once per step.
      std::vector<gf::AxpyTerm<F>> terms;
      terms.reserve(plan.steps.size());
      for (const auto& step : plan.steps) {
        const Symbol& sym = symbols[locate_server(servers, step.server)];
        CEC_CHECK_MSG(sym.size() == symbol_bytes(step.server),
                      "decode: bad symbol size from server " << step.server);
        terms.push_back({step.coeff,
                         std::span<const std::uint8_t>(sym).subspan(
                             step.row * value_bytes_, value_bytes_)});
      }
      Value out(value_bytes_);
      gf::axpy_batch<F>(out.mutable_span(),
                        std::span<const gf::AxpyTerm<F>>(terms));
      return out;
    } else {
      std::vector<Elem> acc(elems_per_value_, F::zero);
      std::vector<Elem> row(elems_per_value_);
      for (const auto& step : plan.steps) {
        const Symbol& sym = symbols[locate_server(servers, step.server)];
        CEC_CHECK_MSG(sym.size() == symbol_bytes(step.server),
                      "decode: bad symbol size from server " << step.server);
        detail::unpack<F>(std::span<const std::uint8_t>(sym).subspan(
                              step.row * value_bytes_, value_bytes_),
                          std::span<Elem>(row));
        gf::axpy<F>(std::span<Elem>(acc), step.coeff,
                    std::span<const Elem>(row));
      }
      Value out(value_bytes_);
      detail::pack<F>(std::span<const Elem>(acc), out.mutable_span());
      return out;
    }
  }

  std::vector<Matrix> matrices_;
  std::size_t value_bytes_;
  std::string name_;
  std::size_t k_ = 0;
  std::size_t elems_per_value_ = 0;
  Matrix stacked_;
  std::vector<std::vector<ObjectId>> supports_;
  std::vector<std::uint64_t> support_masks_;
  std::vector<std::vector<std::vector<ReencodeStep>>> reencode_plans_;
  std::vector<std::vector<RecoverySet>> recovery_sets_;
  std::vector<std::vector<std::uint32_t>> recovery_masks_;  // minimal, per obj
  std::vector<std::uint64_t> local_;  // per object: bitmask of local servers
  mutable DecodePlanCache<Elem> plan_cache_;
  mutable RepairPlanCache<Elem> repair_cache_;
  mutable std::atomic<RepairPlanMode> repair_mode_{
      repair_plan_mode_from_env()};
};

}  // namespace causalec::erasure
