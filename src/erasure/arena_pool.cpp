#include "erasure/arena_pool.h"

#include <bit>
#include <cstdlib>
#include <string_view>

#include "common/expect.h"

namespace causalec::erasure {

namespace {

/// Weak registry of live pool cores for stats aggregation. Pools register
/// on construction and fold-and-unregister on close; the registry never
/// keeps a core alive.
struct Registry {
  std::mutex mu;
  std::vector<std::weak_ptr<PoolCore>> pools;
  PoolCounters folded;  // counters of closed pools, guarded by mu
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: outlives static teardown
  return *r;
}

void add_counters(PoolCounters& into, const PoolCounters& from) {
  into.fresh += from.fresh;
  into.fresh_bytes += from.fresh_bytes;
  into.recycled += from.recycled;
  into.returned += from.returned;
  into.dropped += from.dropped;
}

}  // namespace

void Arena::unref() {
  if (refs.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  if (origin != nullptr) {
    // Moves ownership of *this into a pool; `origin` keeps the core
    // alive across the call even if this was the last arena of a dead pool.
    const std::shared_ptr<PoolCore> origin_pool = std::move(origin);
    // A frame allocated on the sender's thread usually dies on a receiver
    // thread. Returning it to the origin pool keeps each pool's supply
    // balanced with its own allocation rate, but contends that pool's
    // mutex with the sender's allocations (and every other receiver). So:
    // try the origin lock without blocking, and when it is contended adopt
    // the arena into the releasing thread's own pool instead -- both sides
    // stay on uncontended locks and arenas circulate with the message
    // flow. CAUSALEC_NUMA keeps strict (blocking) origin-return, so
    // first-touch page placement stays meaningful.
    if (!pool_detail::numa_prefault_enabled()) {
      if (origin_pool->try_release(this)) return;
      const std::shared_ptr<PoolCore>& local = *pool_detail::tls_pool();
      if (local != nullptr && local != origin_pool) {
        local->release(this);
        return;
      }
    }
    origin_pool->release(this);
    return;
  }
  delete this;
}

int PoolCore::class_for(std::size_t n) {
  if (n == 0 || n > (std::size_t{1} << kMaxClassLog2)) return -1;
  const std::size_t width = std::bit_width(n - 1);
  const std::size_t log2 = width < kMinClassLog2 ? kMinClassLog2 : width;
  return static_cast<int>(log2 - kMinClassLog2);
}

PoolCore::~PoolCore() {
  // close() normally ran already (BufferPool destructor); a core that dies
  // without it (future direct use) must still free its buckets.
  for (auto& bucket : buckets_) {
    for (Arena* a : bucket) delete a;
    bucket.clear();
  }
}

Arena* PoolCore::acquire(std::size_t n, std::shared_ptr<PoolCore> self) {
  const int cls = class_for(n);
  if (cls < 0) return nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!closed_ && !buckets_[cls].empty()) {
      Arena* a = buckets_[cls].back();
      buckets_[cls].pop_back();
      recycled_.fetch_add(1, std::memory_order_relaxed);
      a->refs.store(1, std::memory_order_relaxed);
      a->origin = std::move(self);
      a->bytes.resize(n);  // within reserved class capacity: no malloc
      return a;
    }
  }
  auto* a = new Arena;
  a->origin = std::move(self);
  a->size_class = static_cast<std::uint8_t>(cls);
  const std::size_t capacity = std::size_t{1}
                               << (kMinClassLog2 + static_cast<std::size_t>(cls));
  a->bytes.reserve(capacity);
  if (pool_detail::numa_prefault_enabled()) {
    // First-touch the full class capacity on this (the owning) thread so
    // the arena's pages land on its NUMA node before any recycled use can
    // touch them from elsewhere. Portable best-effort: a no-op placement
    // hint on UMA machines.
    a->bytes.assign(capacity, 0);
  }
  a->bytes.resize(n);
  fresh_.fetch_add(1, std::memory_order_relaxed);
  fresh_bytes_.fetch_add(n, std::memory_order_relaxed);
  return a;
}

void PoolCore::release(Arena* arena) {
  CEC_DCHECK(arena->refs.load(std::memory_order_relaxed) == 0);
  const int cls = arena->size_class;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!closed_ &&
        buckets_[cls].size() < kMaxPerClass) {
      buckets_[cls].push_back(arena);
      returned_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  dropped_.fetch_add(1, std::memory_order_relaxed);
  delete arena;
}

bool PoolCore::try_release(Arena* arena) {
  CEC_DCHECK(arena->refs.load(std::memory_order_relaxed) == 0);
  const int cls = arena->size_class;
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) return false;
  if (closed_ || buckets_[cls].size() >= kMaxPerClass) return false;
  buckets_[cls].push_back(arena);
  returned_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void PoolCore::close() {
  std::vector<Arena*> doomed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
    closed_ = true;
    for (auto& bucket : buckets_) {
      doomed.insert(doomed.end(), bucket.begin(), bucket.end());
      bucket.clear();
    }
  }
  for (Arena* a : doomed) delete a;
  // Fold this pool's counters into the process totals so alloc_stats()
  // deltas survive pool churn, then stop double-counting via the registry.
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  add_counters(reg.folded, counters());
  std::erase_if(reg.pools, [this](const std::weak_ptr<PoolCore>& weak) {
    const auto locked = weak.lock();
    return locked == nullptr || locked.get() == this;
  });
}

PoolCounters PoolCore::counters() const {
  PoolCounters c;
  c.fresh = fresh_.load(std::memory_order_relaxed);
  c.fresh_bytes = fresh_bytes_.load(std::memory_order_relaxed);
  c.recycled = recycled_.load(std::memory_order_relaxed);
  c.returned = returned_.load(std::memory_order_relaxed);
  c.dropped = dropped_.load(std::memory_order_relaxed);
  return c;
}

void PoolCore::reset_counters() {
  fresh_.store(0, std::memory_order_relaxed);
  fresh_bytes_.store(0, std::memory_order_relaxed);
  recycled_.store(0, std::memory_order_relaxed);
  returned_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

BufferPool::BufferPool() : core_(std::make_shared<PoolCore>()) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.pools.push_back(core_);
}

BufferPool::~BufferPool() {
  uninstall();
  core_->close();
}

void BufferPool::install() { *pool_detail::tls_pool() = core_; }

void BufferPool::uninstall() {
  std::shared_ptr<PoolCore>* current = pool_detail::tls_pool();
  if (*current == core_) current->reset();
}

namespace pool_detail {

std::shared_ptr<PoolCore>* tls_pool() {
  thread_local std::shared_ptr<PoolCore> pool;
  return &pool;
}

PoolCounters registry_totals() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  PoolCounters total;
  for (const auto& weak : reg.pools) {
    if (const auto core = weak.lock()) add_counters(total, core->counters());
  }
  return total;
}

void registry_reset() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& weak : reg.pools) {
    if (const auto core = weak.lock()) core->reset_counters();
  }
}

PoolCounters folded_totals() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  return reg.folded;
}

void folded_reset() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.folded = PoolCounters{};
}

bool numa_prefault_enabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("CAUSALEC_NUMA");
    return env != nullptr &&
           (std::string_view(env) == "1" || std::string_view(env) == "on");
  }();
  return enabled;
}

}  // namespace pool_detail

}  // namespace causalec::erasure
