// Bulk operations on vectors of field elements.
//
// Object values in CausalEC are elements of V = F^d; codeword symbols are
// linear combinations of such vectors. These kernels are the hot path of
// encode / re-encode / decode.
//
// Characteristic-2 fields route through the runtime-dispatched region
// kernels in gf/kernels.h (scalar / 64-bit-sliced / SSSE3 / AVX2); odd-
// characteristic fields use the elementwise loops below. All tiers are
// byte-identical to the scalar reference (pinned by tests/gf_kernel_test).
//
// dst and src must not overlap: the vectorized tiers operate in 16/32-byte
// blocks, so partial overlap silently corrupts data instead of degrading
// to the shifted scalar answer. The GF(2^8) region kernels CHECK this on
// every call; the elementwise paths DCHECK it.
#pragma once

#include <cstdint>
#include <span>
#include <type_traits>

#include "common/expect.h"
#include "gf/field.h"
#include "gf/gf256.h"
#include "gf/kernels.h"

namespace causalec::gf {

namespace detail_vec {

inline constexpr std::size_t kGf256TableThreshold =
    kernels::kGf256TableThreshold;

inline bool overlaps(const void* a, std::size_t a_bytes, const void* b,
                     std::size_t b_bytes) {
  const auto pa = reinterpret_cast<std::uintptr_t>(a);
  const auto pb = reinterpret_cast<std::uintptr_t>(b);
  return pa < pb + b_bytes && pb < pa + a_bytes;
}

template <typename Elem>
std::uint8_t* as_bytes(std::span<Elem> s) {
  return reinterpret_cast<std::uint8_t*>(s.data());
}

template <typename Elem>
const std::uint8_t* as_bytes(std::span<const Elem> s) {
  return reinterpret_cast<const std::uint8_t*>(s.data());
}

}  // namespace detail_vec

/// dst += src (elementwise field addition).
template <Field F>
void add_into(std::span<typename F::Elem> dst,
              std::span<const typename F::Elem> src) {
  CEC_DCHECK(dst.size() == src.size());
  if constexpr (!F::kOddCharacteristic) {
    // Addition is XOR on the underlying bytes for any GF(2^m).
    kernels::xor_region(detail_vec::as_bytes(dst), detail_vec::as_bytes(src),
                        dst.size_bytes());
  } else {
    CEC_DCHECK(!detail_vec::overlaps(dst.data(), dst.size_bytes(), src.data(),
                                     src.size_bytes()));
    for (std::size_t i = 0; i < dst.size(); ++i) {
      dst[i] = F::add(dst[i], src[i]);
    }
  }
}

/// dst -= src.
template <Field F>
void sub_into(std::span<typename F::Elem> dst,
              std::span<const typename F::Elem> src) {
  CEC_DCHECK(dst.size() == src.size());
  if constexpr (!F::kOddCharacteristic) {
    kernels::xor_region(detail_vec::as_bytes(dst), detail_vec::as_bytes(src),
                        dst.size_bytes());
  } else {
    CEC_DCHECK(!detail_vec::overlaps(dst.data(), dst.size_bytes(), src.data(),
                                     src.size_bytes()));
    for (std::size_t i = 0; i < dst.size(); ++i) {
      dst[i] = F::sub(dst[i], src[i]);
    }
  }
}

/// dst += a * src ("axpy"). a == 0 is a no-op; a == 1 degrades to add;
/// GF(2^8) dispatches to the active region-kernel tier.
template <Field F>
void axpy(std::span<typename F::Elem> dst, typename F::Elem a,
          std::span<const typename F::Elem> src) {
  CEC_DCHECK(dst.size() == src.size());
  if (a == F::zero) return;
  if (a == F::one) {
    add_into<F>(dst, src);
    return;
  }
  if constexpr (std::is_same_v<F, GF256>) {
    kernels::axpy_region_gf256(dst.data(), a, src.data(), dst.size());
  } else {
    CEC_DCHECK(!detail_vec::overlaps(dst.data(), dst.size_bytes(), src.data(),
                                     src.size_bytes()));
    for (std::size_t i = 0; i < dst.size(); ++i) {
      dst[i] = F::add(dst[i], F::mul(a, src[i]));
    }
  }
}

/// One term of an axpy_batch: dst += coeff * src.
template <Field F>
struct AxpyTerm {
  typename F::Elem coeff;
  std::span<const typename F::Elem> src;
};

/// dst += sum_t terms[t].coeff * terms[t].src — the fused multi-axpy.
/// GF(2^8) routes through the kernel tier's axpy_batch, which touches each
/// destination cache line once per chunk of kernels::kMaxBatchTerms terms
/// instead of once per term; other fields fall back to sequential axpy
/// (bit-identical: XOR/field addition is order-independent).
template <Field F>
void axpy_batch(std::span<typename F::Elem> dst,
                std::span<const AxpyTerm<F>> terms) {
  if constexpr (std::is_same_v<F, GF256>) {
    kernels::BatchTerm raw[kernels::kMaxBatchTerms];
    std::size_t count = 0;
    for (const AxpyTerm<F>& term : terms) {
      CEC_DCHECK(term.src.size() == dst.size());
      if (term.coeff == F::zero) continue;
      raw[count++] = {term.coeff, term.src.data()};
      if (count == kernels::kMaxBatchTerms) {
        kernels::axpy_batch_gf256(dst.data(), {raw, count}, dst.size());
        count = 0;
      }
    }
    if (count > 0) {
      kernels::axpy_batch_gf256(dst.data(), {raw, count}, dst.size());
    }
  } else {
    for (const AxpyTerm<F>& term : terms) {
      axpy<F>(dst, term.coeff, term.src);
    }
  }
}

/// dst *= a (in place; no aliasing concern).
template <Field F>
void scale(std::span<typename F::Elem> dst, typename F::Elem a) {
  if (a == F::one) return;
  if constexpr (std::is_same_v<F, GF256>) {
    kernels::scale_region_gf256(dst.data(), a, dst.size());
  } else {
    for (auto& x : dst) x = F::mul(a, x);
  }
}

/// dst = 0.
template <Field F>
void set_zero(std::span<typename F::Elem> dst) {
  for (auto& x : dst) x = F::zero;
}

/// True iff every element is zero.
template <Field F>
bool is_zero(std::span<const typename F::Elem> v) {
  for (auto x : v) {
    if (x != F::zero) return false;
  }
  return true;
}

}  // namespace causalec::gf
