// Bulk operations on vectors of field elements.
//
// Object values in CausalEC are elements of V = F^d; codeword symbols are
// linear combinations of such vectors. These kernels are the hot path of
// encode / re-encode / decode.
#pragma once

#include <array>
#include <span>
#include <type_traits>

#include "common/expect.h"
#include "gf/field.h"
#include "gf/gf256.h"

namespace causalec::gf {

namespace detail_vec {

/// GF(2^8) fast path: one 256-entry product table for the coefficient
/// (256 multiplications to build), then a single lookup per byte instead of
/// two log/exp lookups plus an add. Pays off once the vector is longer than
/// the table-build cost.
inline constexpr std::size_t kGf256TableThreshold = 1024;

inline void axpy_gf256_table(std::span<std::uint8_t> dst, std::uint8_t a,
                             std::span<const std::uint8_t> src) {
  std::array<std::uint8_t, 256> table;
  for (int x = 0; x < 256; ++x) {
    table[static_cast<std::size_t>(x)] =
        GF256::mul(a, static_cast<std::uint8_t>(x));
  }
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] ^= table[src[i]];
  }
}

}  // namespace detail_vec

/// dst += src (elementwise field addition).
template <Field F>
void add_into(std::span<typename F::Elem> dst,
              std::span<const typename F::Elem> src) {
  CEC_DCHECK(dst.size() == src.size());
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] = F::add(dst[i], src[i]);
  }
}

/// dst -= src.
template <Field F>
void sub_into(std::span<typename F::Elem> dst,
              std::span<const typename F::Elem> src) {
  CEC_DCHECK(dst.size() == src.size());
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] = F::sub(dst[i], src[i]);
  }
}

/// dst += a * src ("axpy"). a == 0 is a no-op; a == 1 degrades to add;
/// long GF(2^8) vectors take the product-table fast path.
template <Field F>
void axpy(std::span<typename F::Elem> dst, typename F::Elem a,
          std::span<const typename F::Elem> src) {
  CEC_DCHECK(dst.size() == src.size());
  if (a == F::zero) return;
  if (a == F::one) {
    add_into<F>(dst, src);
    return;
  }
  if constexpr (std::is_same_v<F, GF256>) {
    if (dst.size() >= detail_vec::kGf256TableThreshold) {
      detail_vec::axpy_gf256_table(dst, a, src);
      return;
    }
  }
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] = F::add(dst[i], F::mul(a, src[i]));
  }
}

/// dst *= a.
template <Field F>
void scale(std::span<typename F::Elem> dst, typename F::Elem a) {
  if (a == F::one) return;
  for (auto& x : dst) x = F::mul(a, x);
}

/// dst = 0.
template <Field F>
void set_zero(std::span<typename F::Elem> dst) {
  for (auto& x : dst) x = F::zero;
}

/// True iff every element is zero.
template <Field F>
bool is_zero(std::span<const typename F::Elem> v) {
  for (auto x : v) {
    if (x != F::zero) return false;
  }
  return true;
}

}  // namespace causalec::gf
