// GF256 is header-only (constexpr tables); this TU exists so the gf library
// has at least one object file and to anchor a sanity check at load time.
#include "gf/gf256.h"

namespace causalec::gf {

namespace {
// Compile-time sanity: alpha^255 == 1 and 2*142 == 1 under 0x11D... the
// latter is the classic inverse pair for this polynomial.
static_assert(GF256::mul(2, 142) == 1);
static_assert(GF256::mul(GF256::exp(254), 2) == 1);
static_assert(GF256::add(7, 7) == 0);
}  // namespace

}  // namespace causalec::gf
