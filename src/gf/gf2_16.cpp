#include "gf/gf2_16.h"

#include <memory>

namespace causalec::gf {

const GF2_16::Tables& GF2_16::tables() {
  // Heap-allocated and leaked intentionally: function-local static with
  // trivial destruction order concerns, built exactly once.
  static const Tables* t = [] {
    auto tables = std::make_unique<Tables>();
    std::uint32_t x = 1;
    for (std::uint32_t i = 0; i < 65535; ++i) {
      tables->exp[i] = static_cast<std::uint16_t>(x);
      tables->exp[i + 65535] = static_cast<std::uint16_t>(x);
      tables->log[x] = static_cast<std::uint16_t>(i);
      x <<= 1;
      if (x & 0x10000) x ^= kPoly;
    }
    tables->log[0] = 0;
    return tables.release();
  }();
  return *t;
}

}  // namespace causalec::gf
