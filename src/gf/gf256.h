// GF(2^8) with the primitive polynomial x^8+x^4+x^3+x^2+1 (0x11D), the
// polynomial used by Reed-Solomon implementations such as jerasure and
// ISA-L. Multiplication via constexpr-built log/exp tables.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/expect.h"

namespace causalec::gf {

namespace detail256 {

constexpr std::uint32_t kPoly = 0x11D;

constexpr std::array<std::uint8_t, 510> build_exp() {
  std::array<std::uint8_t, 510> exp{};
  std::uint32_t x = 1;
  for (int i = 0; i < 255; ++i) {
    exp[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
    exp[static_cast<std::size_t>(i + 255)] = static_cast<std::uint8_t>(x);
    x <<= 1;
    if (x & 0x100) x ^= kPoly;
  }
  return exp;
}

constexpr std::array<std::uint8_t, 256> build_log() {
  std::array<std::uint8_t, 256> log{};
  const auto exp = build_exp();
  for (int i = 0; i < 255; ++i) {
    log[exp[static_cast<std::size_t>(i)]] = static_cast<std::uint8_t>(i);
  }
  log[0] = 0;  // never consulted for zero operands
  return log;
}

inline constexpr auto kExp = build_exp();
inline constexpr auto kLog = build_log();

}  // namespace detail256

class GF256 {
 public:
  using Elem = std::uint8_t;

  static constexpr Elem zero = 0;
  static constexpr Elem one = 1;
  static constexpr std::size_t kElemBytes = 1;
  static constexpr std::uint64_t kOrder = 256;
  static constexpr bool kOddCharacteristic = false;

  static constexpr Elem add(Elem a, Elem b) { return a ^ b; }
  static constexpr Elem sub(Elem a, Elem b) { return a ^ b; }
  static constexpr Elem neg(Elem a) { return a; }

  static constexpr Elem mul(Elem a, Elem b) {
    if (a == 0 || b == 0) return 0;
    return detail256::kExp[static_cast<std::size_t>(detail256::kLog[a]) +
                           detail256::kLog[b]];
  }

  static Elem inv(Elem a) {
    CEC_CHECK_MSG(a != 0, "GF256 inverse of zero");
    return detail256::kExp[255 - detail256::kLog[a]];
  }

  static constexpr Elem from_int(std::uint64_t x) {
    return static_cast<Elem>(x & 0xFF);
  }

  /// Generator of the multiplicative group (alpha = 2 for 0x11D).
  static constexpr Elem generator() { return 2; }

  /// alpha^i.
  static constexpr Elem exp(std::uint32_t i) {
    return detail256::kExp[i % 255];
  }
};

}  // namespace causalec::gf
