// Scalar and 64-bit-sliced kernel tiers, CPU detection, and the dispatcher.
#include "gf/kernels.h"

#include <array>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/expect.h"
#include "common/logging.h"
#include "gf/gf256.h"
#include "gf/kernels_impl.h"

namespace causalec::gf::kernels {

namespace {

using detail::KernelTable;
using detail::NibbleTables;

// ---------------------------------------------------------------------------
// Scalar tier: the reference. Short vectors multiply through log/exp; long
// vectors build a full 256-entry product table first (one lookup per byte).
// ---------------------------------------------------------------------------

std::array<std::uint8_t, 256> build_product_table(std::uint8_t a) {
  std::array<std::uint8_t, 256> table;
  for (int x = 0; x < 256; ++x) {
    table[static_cast<std::size_t>(x)] =
        GF256::mul(a, static_cast<std::uint8_t>(x));
  }
  return table;
}

void scalar_xor(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
}

void scalar_mul(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t a,
                std::size_t n) {
  if (n >= kGf256TableThreshold) {
    const auto table = build_product_table(a);
    for (std::size_t i = 0; i < n; ++i) dst[i] = table[src[i]];
    return;
  }
  for (std::size_t i = 0; i < n; ++i) dst[i] = GF256::mul(a, src[i]);
}

void scalar_axpy(std::uint8_t* dst, std::uint8_t a, const std::uint8_t* src,
                 std::size_t n) {
  if (n >= kGf256TableThreshold) {
    const auto table = build_product_table(a);
    for (std::size_t i = 0; i < n; ++i) dst[i] ^= table[src[i]];
    return;
  }
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= GF256::mul(a, src[i]);
}

void scalar_scale(std::uint8_t* dst, std::uint8_t a, std::size_t n) {
  if (n >= kGf256TableThreshold) {
    const auto table = build_product_table(a);
    for (std::size_t i = 0; i < n; ++i) dst[i] = table[dst[i]];
    return;
  }
  for (std::size_t i = 0; i < n; ++i) dst[i] = GF256::mul(a, dst[i]);
}

void scalar_axpy_batch(std::uint8_t* dst, const BatchTerm* terms,
                       std::size_t num_terms, std::size_t n) {
  // Sequential axpy IS the reference semantics (XOR accumulation is
  // order-independent), so the scalar tier just loops.
  for (std::size_t t = 0; t < num_terms; ++t) {
    scalar_axpy(dst, terms[t].coeff, terms[t].src, n);
  }
}

constexpr KernelTable kScalarTable = {scalar_xor, scalar_mul, scalar_axpy,
                                      scalar_scale, scalar_axpy_batch};

// ---------------------------------------------------------------------------
// Sliced tier: portable SWAR over 64-bit words. Multiplication by repeated
// doubling -- the packed xtime step shifts every byte left one bit and
// folds the overflow back with the 0x11D reduction polynomial's low byte
// (0x1D), eight bytes at a time, no table lookups in the inner loop.
// ---------------------------------------------------------------------------

constexpr std::uint64_t kLow7 = 0x7F7F7F7F7F7F7F7FULL;
constexpr std::uint64_t kHighBit = 0x8080808080808080ULL;

inline std::uint64_t gf256_mul_word(std::uint64_t x, std::uint8_t a) {
  std::uint64_t r = 0;
  while (a != 0) {
    if (a & 1) r ^= x;
    a >>= 1;
    // xtime on eight packed bytes: (hi >> 7) has one bit per overflowing
    // byte; * 0x1D expands it to the reduction constant in that byte.
    const std::uint64_t hi = x & kHighBit;
    x = ((x & kLow7) << 1) ^ ((hi >> 7) * 0x1D);
  }
  return r;
}

inline std::uint64_t load_word(const std::uint8_t* p) {
  std::uint64_t w;
  std::memcpy(&w, p, sizeof(w));
  return w;
}

inline void store_word(std::uint8_t* p, std::uint64_t w) {
  std::memcpy(p, &w, sizeof(w));
}

void sliced_xor(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    store_word(dst + i, load_word(dst + i) ^ load_word(src + i));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void sliced_mul(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t a,
                std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    store_word(dst + i, gf256_mul_word(load_word(src + i), a));
  }
  for (; i < n; ++i) dst[i] = GF256::mul(a, src[i]);
}

void sliced_axpy(std::uint8_t* dst, std::uint8_t a, const std::uint8_t* src,
                 std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    store_word(dst + i,
               load_word(dst + i) ^ gf256_mul_word(load_word(src + i), a));
  }
  for (; i < n; ++i) dst[i] ^= GF256::mul(a, src[i]);
}

void sliced_scale(std::uint8_t* dst, std::uint8_t a, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    store_word(dst + i, gf256_mul_word(load_word(dst + i), a));
  }
  for (; i < n; ++i) dst[i] = GF256::mul(a, dst[i]);
}

void sliced_axpy_batch(std::uint8_t* dst, const BatchTerm* terms,
                       std::size_t num_terms, std::size_t n) {
  // Sequential per term: the bit-sliced multiply is a dependent 8-step
  // chain, so a fused per-word inner loop over terms serializes on the
  // accumulator and measures slower than one pass per term (which the
  // compiler can software-pipeline across words).
  for (std::size_t t = 0; t < num_terms; ++t) {
    sliced_axpy(dst, terms[t].coeff, terms[t].src, n);
  }
}

constexpr KernelTable kSlicedTable = {sliced_xor, sliced_mul, sliced_axpy,
                                      sliced_scale, sliced_axpy_batch};

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

const KernelTable* table_for(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return &kScalarTable;
    case Tier::kSliced:
      return &kSlicedTable;
    case Tier::kSsse3:
      return detail::ssse3_kernel_table();
    case Tier::kAvx2:
      return detail::avx2_kernel_table();
    case Tier::kGfni:
      return detail::gfni_kernel_table();
  }
  return nullptr;
}

CpuFeatures detect_cpu() {
  CpuFeatures f;
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  f.ssse3 = __builtin_cpu_supports("ssse3");
  f.avx2 = __builtin_cpu_supports("avx2");
  f.gfni_avx512 = __builtin_cpu_supports("gfni") &&
                  __builtin_cpu_supports("avx512bw") &&
                  __builtin_cpu_supports("avx512vl");
#endif
  return f;
}

/// -1 = not yet resolved; otherwise a Tier value.
std::atomic<int> g_active_tier{-1};

Tier resolve_initial_tier() {
  const char* env = std::getenv("CAUSALEC_GF_KERNEL");
  Tier resolved;
  if (env != nullptr && env[0] != '\0' &&
      std::string_view(env) != "auto") {
    // Strict: a mis-provisioned fleet silently running the scalar tier is
    // a 20x regression that looks like a capacity problem. Refuse to start.
    const auto requested = parse_tier(env);
    CEC_CHECK_MSG(requested.has_value(),
                  "CAUSALEC_GF_KERNEL=" << env
                                        << " is not a kernel tier; available: "
                                        << available_tier_names() << ", auto");
    CEC_CHECK_MSG(tier_available(*requested),
                  "CAUSALEC_GF_KERNEL="
                      << env << " is unavailable on this CPU/build; available: "
                      << available_tier_names() << ", auto");
    resolved = *requested;
  } else {
    resolved = best_available_tier();
  }
  CEC_LOG(kInfo) << "gf kernels: using " << tier_name(resolved)
                 << " tier (available: " << available_tier_names() << ")";
  return resolved;
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures features = detect_cpu();
  return features;
}

bool tier_available(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
    case Tier::kSliced:
      return true;
    case Tier::kSsse3:
      return cpu_features().ssse3 && detail::ssse3_kernel_table() != nullptr;
    case Tier::kAvx2:
      return cpu_features().avx2 && detail::avx2_kernel_table() != nullptr;
    case Tier::kGfni:
      return cpu_features().gfni_avx512 &&
             detail::gfni_kernel_table() != nullptr;
  }
  return false;
}

Tier best_available_tier() {
  if (tier_available(Tier::kGfni)) return Tier::kGfni;
  if (tier_available(Tier::kAvx2)) return Tier::kAvx2;
  if (tier_available(Tier::kSsse3)) return Tier::kSsse3;
  return Tier::kSliced;
}

const char* tier_name(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kSliced:
      return "sliced";
    case Tier::kSsse3:
      return "ssse3";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kGfni:
      return "gfni";
  }
  return "unknown";
}

std::optional<Tier> parse_tier(std::string_view name) {
  if (name == "scalar") return Tier::kScalar;
  if (name == "sliced") return Tier::kSliced;
  if (name == "ssse3") return Tier::kSsse3;
  if (name == "avx2") return Tier::kAvx2;
  if (name == "gfni") return Tier::kGfni;
  return std::nullopt;
}

std::string available_tier_names() {
  std::string names;
  for (int t = 0; t < kNumTiers; ++t) {
    const auto tier = static_cast<Tier>(t);
    if (!tier_available(tier)) continue;
    if (!names.empty()) names += ", ";
    names += tier_name(tier);
  }
  return names;
}

Tier active_tier() {
  int tier = g_active_tier.load(std::memory_order_acquire);
  if (tier < 0) {
    // First call (possibly racing): every racer computes the same value,
    // so the exchange is idempotent.
    const Tier resolved = resolve_initial_tier();
    int expected = -1;
    if (g_active_tier.compare_exchange_strong(expected,
                                              static_cast<int>(resolved),
                                              std::memory_order_acq_rel)) {
      return resolved;
    }
    tier = expected;  // another thread (or a set_active_tier) won
  }
  return static_cast<Tier>(tier);
}

void set_active_tier(Tier tier) {
  CEC_CHECK_MSG(tier_available(tier),
                "gf kernel tier " << tier_name(tier)
                                  << " is unavailable on this CPU/build");
  g_active_tier.store(static_cast<int>(tier), std::memory_order_release);
}

namespace {

/// Overlap guard, always on: the vectorized tiers read/write in blocks, so
/// partially overlapping regions would be silently corrupted, not just
/// reordered. Two pointer comparisons -- negligible next to the region work.
inline void check_no_overlap(const void* dst, const void* src,
                             std::size_t n) {
  const auto d = reinterpret_cast<std::uintptr_t>(dst);
  const auto s = reinterpret_cast<std::uintptr_t>(src);
  CEC_CHECK_MSG(d + n <= s || s + n <= d,
                "gf kernel: dst and src overlap (dst=" << dst << ", src="
                                                       << src << ", n=" << n
                                                       << ")");
}

inline const KernelTable& active_table() {
  const KernelTable* table = table_for(active_tier());
  CEC_DCHECK(table != nullptr);
  return *table;
}

}  // namespace

void xor_region(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  if (n == 0) return;
  check_no_overlap(dst, src, n);
  active_table().xor_region(dst, src, n);
}

void mul_region_gf256(std::uint8_t* dst, const std::uint8_t* src,
                      std::uint8_t a, std::size_t n) {
  if (n == 0) return;
  check_no_overlap(dst, src, n);
  if (a == 0) {
    std::memset(dst, 0, n);
    return;
  }
  if (a == 1) {
    std::memcpy(dst, src, n);
    return;
  }
  active_table().mul_region(dst, src, a, n);
}

void axpy_region_gf256(std::uint8_t* dst, std::uint8_t a,
                       const std::uint8_t* src, std::size_t n) {
  if (n == 0 || a == 0) return;
  check_no_overlap(dst, src, n);
  if (a == 1) {
    active_table().xor_region(dst, src, n);
    return;
  }
  active_table().axpy_region(dst, a, src, n);
}

void scale_region_gf256(std::uint8_t* dst, std::uint8_t a, std::size_t n) {
  if (n == 0 || a == 1) return;
  if (a == 0) {
    std::memset(dst, 0, n);
    return;
  }
  active_table().scale_region(dst, a, n);
}

void axpy_batch_gf256(std::uint8_t* dst, std::span<const BatchTerm> terms,
                      std::size_t n) {
  if (n == 0) return;
  const KernelTable& table = active_table();
  BatchTerm chunk[kMaxBatchTerms];
  std::size_t count = 0;
  for (const BatchTerm& term : terms) {
    if (term.coeff == 0) continue;
    check_no_overlap(dst, term.src, n);
    chunk[count++] = term;
    if (count == kMaxBatchTerms) {
      table.axpy_batch(dst, chunk, count, n);
      count = 0;
    }
  }
  if (count > 0) table.axpy_batch(dst, chunk, count, n);
}

}  // namespace causalec::gf::kernels
