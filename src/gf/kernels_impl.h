// Internal plumbing shared by the kernel translation units. Not installed
// into vector_ops users; include gf/kernels.h instead.
#pragma once

#include <cstddef>
#include <cstdint>

#include "gf/gf256.h"
#include "gf/kernels.h"

namespace causalec::gf::kernels::detail {

/// One implementation tier = one table of region functions. The dispatcher
/// in kernels.cpp picks a table once and indirect-calls through it.
/// axpy_batch receives at most kMaxBatchTerms terms, all with nonzero
/// coefficients (the entry point filters and chunks).
struct KernelTable {
  void (*xor_region)(std::uint8_t* dst, const std::uint8_t* src,
                     std::size_t n);
  void (*mul_region)(std::uint8_t* dst, const std::uint8_t* src,
                     std::uint8_t a, std::size_t n);
  void (*axpy_region)(std::uint8_t* dst, std::uint8_t a,
                      const std::uint8_t* src, std::size_t n);
  void (*scale_region)(std::uint8_t* dst, std::uint8_t a, std::size_t n);
  void (*axpy_batch)(std::uint8_t* dst, const BatchTerm* terms,
                     std::size_t num_terms, std::size_t n);
};

/// Split-nibble product tables for one coefficient:
///   a * x == lo[x & 0xF] ^ hi[x >> 4]
/// because x = xl ^ (xh << 4) and multiplication distributes over XOR.
/// 32 multiplications to build; amortized over the whole region.
struct NibbleTables {
  alignas(16) std::uint8_t lo[16];
  alignas(16) std::uint8_t hi[16];
};

inline NibbleTables build_nibble_tables(std::uint8_t a) {
  NibbleTables t;
  for (int n = 0; n < 16; ++n) {
    t.lo[n] = GF256::mul(a, static_cast<std::uint8_t>(n));
    t.hi[n] = GF256::mul(a, static_cast<std::uint8_t>(n << 4));
  }
  return t;
}

/// Per-byte tail product through the nibble tables (used by every
/// vector tier for the < block-size remainder; identical to GF256::mul).
inline std::uint8_t nibble_mul(const NibbleTables& t, std::uint8_t x) {
  return static_cast<std::uint8_t>(t.lo[x & 0xF] ^ t.hi[x >> 4]);
}

/// SIMD tiers, defined in kernels_ssse3.cpp / kernels_avx2.cpp /
/// kernels_gfni.cpp. Return nullptr when the tier was not compiled in
/// (non-x86 target or the compiler lacks the ISA flags).
const KernelTable* ssse3_kernel_table();
const KernelTable* avx2_kernel_table();
const KernelTable* gfni_kernel_table();

}  // namespace causalec::gf::kernels::detail
