// SSSE3 kernel tier: split-nibble PSHUFB multiply-regions.
//
// This translation unit is compiled with -mssse3 (see src/gf/CMakeLists.txt)
// and must contain nothing that runs on CPUs without SSSE3: the dispatcher
// only installs this table after __builtin_cpu_supports("ssse3") passed.
#include "gf/kernels_impl.h"

#if defined(CAUSALEC_KERNELS_SSSE3)

#include <tmmintrin.h>

namespace causalec::gf::kernels::detail {

namespace {

inline __m128i load_tables(const std::uint8_t* table16) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(table16));
}

/// p = (lo PSHUFB low-nibbles) ^ (hi PSHUFB high-nibbles): 16 products at
/// once from the 2x16-entry split tables.
inline __m128i mul16(__m128i x, __m128i lo, __m128i hi, __m128i nibble) {
  const __m128i xl = _mm_and_si128(x, nibble);
  const __m128i xh = _mm_and_si128(_mm_srli_epi64(x, 4), nibble);
  return _mm_xor_si128(_mm_shuffle_epi8(lo, xl), _mm_shuffle_epi8(hi, xh));
}

void ssse3_xor(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, s));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void ssse3_mul(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t a,
               std::size_t n) {
  const NibbleTables t = build_nibble_tables(a);
  const __m128i lo = load_tables(t.lo);
  const __m128i hi = load_tables(t.hi);
  const __m128i nibble = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     mul16(x, lo, hi, nibble));
  }
  for (; i < n; ++i) dst[i] = nibble_mul(t, src[i]);
}

void ssse3_axpy(std::uint8_t* dst, std::uint8_t a, const std::uint8_t* src,
                std::size_t n) {
  const NibbleTables t = build_nibble_tables(a);
  const __m128i lo = load_tables(t.lo);
  const __m128i hi = load_tables(t.hi);
  const __m128i nibble = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, mul16(x, lo, hi, nibble)));
  }
  for (; i < n; ++i) dst[i] ^= nibble_mul(t, src[i]);
}

void ssse3_scale(std::uint8_t* dst, std::uint8_t a, std::size_t n) {
  const NibbleTables t = build_nibble_tables(a);
  const __m128i lo = load_tables(t.lo);
  const __m128i hi = load_tables(t.hi);
  const __m128i nibble = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     mul16(x, lo, hi, nibble));
  }
  for (; i < n; ++i) dst[i] = nibble_mul(t, dst[i]);
}

/// Fused multi-axpy: dst is loaded/stored once per 16-byte block per chunk;
/// each term contributes one shuffle pair + XOR against the in-register
/// accumulator.
void ssse3_axpy_group4(std::uint8_t* dst, const BatchTerm* terms,
                       std::size_t num_terms, std::size_t n) {
  NibbleTables tables[4];
  __m128i lo[4];
  __m128i hi[4];
  for (std::size_t t = 0; t < num_terms; ++t) {
    tables[t] = build_nibble_tables(terms[t].coeff);
    lo[t] = load_tables(tables[t].lo);
    hi[t] = load_tables(tables[t].hi);
  }
  const __m128i nibble = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i acc = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    for (std::size_t t = 0; t < num_terms; ++t) {
      const __m128i x = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(terms[t].src + i));
      acc = _mm_xor_si128(acc, mul16(x, lo[t], hi[t], nibble));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), acc);
  }
  for (; i < n; ++i) {
    std::uint8_t acc = dst[i];
    for (std::size_t t = 0; t < num_terms; ++t) {
      acc ^= nibble_mul(tables[t], terms[t].src[i]);
    }
    dst[i] = acc;
  }
}

/// Fused multi-axpy, strip-mined into register-resident groups of 4 terms
/// (4 x 2 table vectors + accumulator/source/mask fit the 16 xmm
/// registers; see the avx2 tier for the spill rationale).
void ssse3_axpy_batch(std::uint8_t* dst, const BatchTerm* terms,
                      std::size_t num_terms, std::size_t n) {
  for (std::size_t t = 0; t < num_terms; t += 4) {
    const std::size_t group = num_terms - t < 4 ? num_terms - t : 4;
    ssse3_axpy_group4(dst, terms + t, group, n);
  }
}

constexpr KernelTable kSsse3Table = {ssse3_xor, ssse3_mul, ssse3_axpy,
                                     ssse3_scale, ssse3_axpy_batch};

}  // namespace

const KernelTable* ssse3_kernel_table() { return &kSsse3Table; }

}  // namespace causalec::gf::kernels::detail

#else  // !CAUSALEC_KERNELS_SSSE3

namespace causalec::gf::kernels::detail {

const KernelTable* ssse3_kernel_table() { return nullptr; }

}  // namespace causalec::gf::kernels::detail

#endif
