// AVX2 kernel tier: the split-nibble scheme of kernels_ssse3.cpp widened
// to 32-byte lanes (VPSHUFB shuffles within each 128-bit lane, which is
// exactly what the nibble lookup needs -- the same 16-entry table is
// broadcast into both lanes).
//
// Compiled with -mavx2 (see src/gf/CMakeLists.txt); only installed after
// __builtin_cpu_supports("avx2") passed.
#include "gf/kernels_impl.h"

#if defined(CAUSALEC_KERNELS_AVX2)

#include <immintrin.h>

namespace causalec::gf::kernels::detail {

namespace {

inline __m256i broadcast_tables(const std::uint8_t* table16) {
  const __m128i t = _mm_loadu_si128(reinterpret_cast<const __m128i*>(table16));
  return _mm256_broadcastsi128_si256(t);
}

inline __m256i mul32(__m256i x, __m256i lo, __m256i hi, __m256i nibble) {
  const __m256i xl = _mm256_and_si256(x, nibble);
  const __m256i xh = _mm256_and_si256(_mm256_srli_epi64(x, 4), nibble);
  return _mm256_xor_si256(_mm256_shuffle_epi8(lo, xl),
                          _mm256_shuffle_epi8(hi, xh));
}

void avx2_xor(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, s));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void avx2_mul(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t a,
              std::size_t n) {
  const NibbleTables t = build_nibble_tables(a);
  const __m256i lo = broadcast_tables(t.lo);
  const __m256i hi = broadcast_tables(t.hi);
  const __m256i nibble = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        mul32(x, lo, hi, nibble));
  }
  for (; i < n; ++i) dst[i] = nibble_mul(t, src[i]);
}

void avx2_axpy(std::uint8_t* dst, std::uint8_t a, const std::uint8_t* src,
               std::size_t n) {
  const NibbleTables t = build_nibble_tables(a);
  const __m256i lo = broadcast_tables(t.lo);
  const __m256i hi = broadcast_tables(t.hi);
  const __m256i nibble = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, mul32(x, lo, hi, nibble)));
  }
  for (; i < n; ++i) dst[i] ^= nibble_mul(t, src[i]);
}

void avx2_scale(std::uint8_t* dst, std::uint8_t a, std::size_t n) {
  const NibbleTables t = build_nibble_tables(a);
  const __m256i lo = broadcast_tables(t.lo);
  const __m256i hi = broadcast_tables(t.hi);
  const __m256i nibble = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        mul32(x, lo, hi, nibble));
  }
  for (; i < n; ++i) dst[i] = nibble_mul(t, dst[i]);
}

/// One fused pass over dst applying up to 4 terms: dst is loaded/stored
/// once per 32-byte block, each term contributes one shuffle pair + XOR
/// against the in-register accumulator. 4 terms x 2 table vectors + the
/// accumulator, source, and nibble mask fit the 16 ymm registers; wider
/// groups spill the tables to the stack and reload them every block, which
/// measures *slower* than sequential axpy.
void avx2_axpy_group4(std::uint8_t* dst, const BatchTerm* terms,
                      std::size_t num_terms, std::size_t n) {
  NibbleTables tables[4];
  __m256i lo[4];
  __m256i hi[4];
  for (std::size_t t = 0; t < num_terms; ++t) {
    tables[t] = build_nibble_tables(terms[t].coeff);
    lo[t] = broadcast_tables(tables[t].lo);
    hi[t] = broadcast_tables(tables[t].hi);
  }
  const __m256i nibble = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i acc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    for (std::size_t t = 0; t < num_terms; ++t) {
      const __m256i x = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(terms[t].src + i));
      acc = _mm256_xor_si256(acc, mul32(x, lo[t], hi[t], nibble));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), acc);
  }
  for (; i < n; ++i) {
    std::uint8_t acc = dst[i];
    for (std::size_t t = 0; t < num_terms; ++t) {
      acc ^= nibble_mul(tables[t], terms[t].src[i]);
    }
    dst[i] = acc;
  }
}

/// Fused multi-axpy, strip-mined into register-resident groups of 4 terms:
/// ceil(num_terms/4) passes over dst instead of num_terms sequential ones.
void avx2_axpy_batch(std::uint8_t* dst, const BatchTerm* terms,
                     std::size_t num_terms, std::size_t n) {
  for (std::size_t t = 0; t < num_terms; t += 4) {
    const std::size_t group = num_terms - t < 4 ? num_terms - t : 4;
    avx2_axpy_group4(dst, terms + t, group, n);
  }
}

constexpr KernelTable kAvx2Table = {avx2_xor, avx2_mul, avx2_axpy,
                                    avx2_scale, avx2_axpy_batch};

}  // namespace

const KernelTable* avx2_kernel_table() { return &kAvx2Table; }

}  // namespace causalec::gf::kernels::detail

#else  // !CAUSALEC_KERNELS_AVX2

namespace causalec::gf::kernels::detail {

const KernelTable* avx2_kernel_table() { return nullptr; }

}  // namespace causalec::gf::kernels::detail

#endif
