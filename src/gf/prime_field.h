// Prime fields F_p for odd p.
//
// The paper's running (5,3) example ("values over a finite field with odd
// characteristic", coefficients 1 and 2) needs characteristic != 2; we
// provide F_p for any odd prime p that fits in 31 bits. Elements are stored
// canonically in [0, p).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/expect.h"

namespace causalec::gf {

namespace detail_fp {

constexpr bool is_prime(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t d = 2; d * d <= n; ++d) {
    if (n % d == 0) return false;
  }
  return true;
}

constexpr std::size_t bytes_for(std::uint64_t p) {
  std::size_t bytes = 1;
  std::uint64_t limit = 256;
  while (limit < p) {
    ++bytes;
    limit <<= 8;
  }
  return bytes;
}

}  // namespace detail_fp

template <std::uint32_t P>
class PrimeField {
  static_assert(P >= 3, "PrimeField requires an odd prime >= 3");
  static_assert(P % 2 == 1, "PrimeField has odd characteristic by design");
  static_assert(detail_fp::is_prime(P), "P must be prime");
  static_assert(P < (1u << 31), "P must fit in 31 bits");

 public:
  using Elem = std::uint32_t;

  static constexpr Elem zero = 0;
  static constexpr Elem one = 1;
  static constexpr std::size_t kElemBytes = detail_fp::bytes_for(P);
  static constexpr std::uint64_t kOrder = P;
  static constexpr bool kOddCharacteristic = true;

  static constexpr Elem add(Elem a, Elem b) {
    const std::uint64_t s = static_cast<std::uint64_t>(a) + b;
    return static_cast<Elem>(s >= P ? s - P : s);
  }

  static constexpr Elem sub(Elem a, Elem b) {
    return a >= b ? a - b : static_cast<Elem>(a + P - b);
  }

  static constexpr Elem neg(Elem a) { return a == 0 ? 0 : P - a; }

  static constexpr Elem mul(Elem a, Elem b) {
    return static_cast<Elem>(static_cast<std::uint64_t>(a) * b % P);
  }

  static Elem inv(Elem a) {
    CEC_CHECK_MSG(a != 0, "PrimeField inverse of zero");
    // Extended Euclid.
    std::int64_t t = 0, new_t = 1;
    std::int64_t r = P, new_r = a;
    while (new_r != 0) {
      const std::int64_t q = r / new_r;
      t -= q * new_t;
      r -= q * new_r;
      std::swap(t, new_t);
      std::swap(r, new_r);
    }
    CEC_DCHECK(r == 1);
    if (t < 0) t += P;
    return static_cast<Elem>(t);
  }

  static constexpr Elem from_int(std::uint64_t x) {
    return static_cast<Elem>(x % P);
  }
};

/// Convenient instantiations.
using F257 = PrimeField<257>;        // smallest field holding a byte
using F65537 = PrimeField<65537>;    // Fermat prime, holds 16-bit symbols
using F13 = PrimeField<13>;          // tiny field for exhaustive tests

}  // namespace causalec::gf
