// Runtime-dispatched bulk GF(2^8) region kernels.
//
// Encode / re-encode (Gamma_{i,k}) / decode (Psi_S) all reduce to
// axpy/scale over byte vectors; these kernels are the innermost loop of
// every one of those paths. Five implementation tiers exist:
//
//   kScalar  -- the log/exp (short vectors) or product-table (long vectors)
//               reference; always present, byte-identical ground truth.
//   kSliced  -- portable 64-bit SWAR: eight bytes per word, multiply by
//               repeated doubling with a packed xtime step. No intrinsics.
//   kSsse3   -- split-nibble PSHUFB: per-coefficient 16-entry low/high
//               product tables, one shuffle pair per 16 bytes.
//   kAvx2    -- the same split-nibble scheme on 32-byte lanes.
//   kGfni    -- GF2P8AFFINEQB on 64-byte ZMM lanes: multiplication by a
//               constant is a GF(2)-linear map, so one 8x8 bit-matrix
//               affine instruction multiplies 64 bytes at once (the matrix
//               encodes our 0x11D field, not GFNI's AES polynomial).
//               Requires GFNI + AVX-512BW/VL; masked loads/stores handle
//               the tail, so there is no scalar remainder loop.
//
// The tier is selected once on first use from the CPU's capabilities
// (gf::kernels::cpu_features()), can be pinned via the CAUSALEC_GF_KERNEL
// environment variable ("scalar", "sliced", "ssse3", "avx2", "gfni", or
// "auto"), and can be switched programmatically (set_active_tier) so tests
// can run every tier against the scalar reference on one machine. An
// unknown or unavailable CAUSALEC_GF_KERNEL value fails fast at first
// dispatch with a message listing the available tiers -- a silent fallback
// would let a mis-provisioned fleet run 20x slower than intended. The
// resolved tier is logged once at startup.
//
// All kernels accept arbitrary (unaligned) pointers and lengths, including
// zero. `dst` and `src` must not overlap: the vectorized tiers read and
// write in 16/32/64-byte blocks, so overlap would not just give the scalar
// answer shifted -- it silently corrupts data. The entry points CHECK this.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace causalec::gf::kernels {

enum class Tier : int {
  kScalar = 0,
  kSliced = 1,
  kSsse3 = 2,
  kAvx2 = 3,
  kGfni = 4,
};

inline constexpr int kNumTiers = 5;

struct CpuFeatures {
  bool ssse3 = false;
  bool avx2 = false;
  /// GFNI together with AVX-512BW+VL (the 512-bit byte-granular subset the
  /// gfni tier needs); plain GFNI-on-SSE CPUs fall back to kAvx2.
  bool gfni_avx512 = false;
};

/// Detected once at first call (the result never changes).
const CpuFeatures& cpu_features();

/// True iff the tier's code is compiled in AND the CPU can run it.
/// kScalar and kSliced are always available.
bool tier_available(Tier tier);

/// Highest-throughput available tier.
Tier best_available_tier();

/// "scalar" / "sliced" / "ssse3" / "avx2" / "gfni".
const char* tier_name(Tier tier);

/// Inverse of tier_name; nullopt for unknown names (including "auto").
std::optional<Tier> parse_tier(std::string_view name);

/// Comma-separated names of every tier available on this CPU/build, for
/// error messages and startup logging.
std::string available_tier_names();

/// The tier the region kernels dispatch to. Resolved on first call:
/// CAUSALEC_GF_KERNEL if set, otherwise best_available_tier(). An unknown
/// or unavailable CAUSALEC_GF_KERNEL value CHECK-fails with the available
/// tiers listed; the resolved tier is logged once.
Tier active_tier();

/// Pin the dispatch tier; CHECK-fails if the tier is unavailable.
void set_active_tier(Tier tier);

/// RAII tier pin for tests: switches on construction, restores on exit.
class ScopedTierForTesting {
 public:
  explicit ScopedTierForTesting(Tier tier) : saved_(active_tier()) {
    set_active_tier(tier);
  }
  ~ScopedTierForTesting() { set_active_tier(saved_); }
  ScopedTierForTesting(const ScopedTierForTesting&) = delete;
  ScopedTierForTesting& operator=(const ScopedTierForTesting&) = delete;

 private:
  Tier saved_;
};

/// Scalar-tier boundary: below this length the scalar reference multiplies
/// through log/exp lookups; at or above it, it builds a 256-entry product
/// table first. (Both give identical bytes; the threshold only matters for
/// speed, and the differential tests straddle it.)
inline constexpr std::size_t kGf256TableThreshold = 1024;

// ---------------------------------------------------------------------------
// Region kernels. dst and src must not overlap (CHECKed).
// ---------------------------------------------------------------------------

/// dst[i] ^= src[i]. (Addition == subtraction in characteristic 2; this is
/// the add/sub kernel for GF(2^8) and, bytewise, GF(2^16).)
void xor_region(std::uint8_t* dst, const std::uint8_t* src, std::size_t n);

/// dst[i] = a * src[i] over GF(2^8).
void mul_region_gf256(std::uint8_t* dst, const std::uint8_t* src,
                      std::uint8_t a, std::size_t n);

/// dst[i] ^= a * src[i] over GF(2^8) ("axpy").
void axpy_region_gf256(std::uint8_t* dst, std::uint8_t a,
                       const std::uint8_t* src, std::size_t n);

/// dst[i] = a * dst[i] over GF(2^8) (in place; no aliasing concern).
void scale_region_gf256(std::uint8_t* dst, std::uint8_t a, std::size_t n);

// ---------------------------------------------------------------------------
// Fused multi-axpy ("axpy_batch").
// ---------------------------------------------------------------------------

/// One source term of an axpy batch: dst[i] ^= coeff * src[i].
struct BatchTerm {
  std::uint8_t coeff;
  const std::uint8_t* src;
};

/// Terms per fused inner pass. Larger batches are processed in chunks of
/// this many terms -- the destination stays cache-hot across chunks, and
/// the per-term lookup tables (nibble tables / affine matrices) stay within
/// one cache line's worth of registers or L1.
inline constexpr std::size_t kMaxBatchTerms = 16;

/// dst[i] ^= sum_t terms[t].coeff * terms[t].src[i], touching each
/// destination byte once per chunk of kMaxBatchTerms terms instead of once
/// per term. Zero coefficients are skipped; a == 1 terms still fuse (they
/// cost one XOR in the inner loop). Each term's src must not overlap dst
/// (CHECKed); terms may alias each other freely (they are only read).
void axpy_batch_gf256(std::uint8_t* dst, std::span<const BatchTerm> terms,
                      std::size_t n);

}  // namespace causalec::gf::kernels
