// Runtime-dispatched bulk GF(2^8) region kernels.
//
// Encode / re-encode (Gamma_{i,k}) / decode (Psi_S) all reduce to
// axpy/scale over byte vectors; these kernels are the innermost loop of
// every one of those paths. Four implementation tiers exist:
//
//   kScalar  -- the log/exp (short vectors) or product-table (long vectors)
//               reference; always present, byte-identical ground truth.
//   kSliced  -- portable 64-bit SWAR: eight bytes per word, multiply by
//               repeated doubling with a packed xtime step. No intrinsics.
//   kSsse3   -- split-nibble PSHUFB: per-coefficient 16-entry low/high
//               product tables, one shuffle pair per 16 bytes.
//   kAvx2    -- the same split-nibble scheme on 32-byte lanes.
//
// The tier is selected once on first use from the CPU's capabilities
// (gf::kernels::cpu_features()), can be pinned via the CAUSALEC_GF_KERNEL
// environment variable ("scalar", "sliced", "ssse3", "avx2", or "auto"),
// and can be switched programmatically (set_active_tier) so tests can run
// every tier against the scalar reference on one machine.
//
// All kernels accept arbitrary (unaligned) pointers and lengths, including
// zero. `dst` and `src` must not overlap: the vectorized tiers read and
// write in 16/32-byte blocks, so overlap would not just give the scalar
// answer shifted -- it silently corrupts data. The entry points CHECK this.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace causalec::gf::kernels {

enum class Tier : int {
  kScalar = 0,
  kSliced = 1,
  kSsse3 = 2,
  kAvx2 = 3,
};

inline constexpr int kNumTiers = 4;

struct CpuFeatures {
  bool ssse3 = false;
  bool avx2 = false;
};

/// Detected once at first call (the result never changes).
const CpuFeatures& cpu_features();

/// True iff the tier's code is compiled in AND the CPU can run it.
/// kScalar and kSliced are always available.
bool tier_available(Tier tier);

/// Highest-throughput available tier.
Tier best_available_tier();

/// "scalar" / "sliced" / "ssse3" / "avx2".
const char* tier_name(Tier tier);

/// Inverse of tier_name; nullopt for unknown names (including "auto").
std::optional<Tier> parse_tier(std::string_view name);

/// The tier the region kernels dispatch to. Resolved on first call:
/// CAUSALEC_GF_KERNEL if set (unknown or unavailable values fall back with
/// a warning), otherwise best_available_tier().
Tier active_tier();

/// Pin the dispatch tier; CHECK-fails if the tier is unavailable.
void set_active_tier(Tier tier);

/// RAII tier pin for tests: switches on construction, restores on exit.
class ScopedTierForTesting {
 public:
  explicit ScopedTierForTesting(Tier tier) : saved_(active_tier()) {
    set_active_tier(tier);
  }
  ~ScopedTierForTesting() { set_active_tier(saved_); }
  ScopedTierForTesting(const ScopedTierForTesting&) = delete;
  ScopedTierForTesting& operator=(const ScopedTierForTesting&) = delete;

 private:
  Tier saved_;
};

/// Scalar-tier boundary: below this length the scalar reference multiplies
/// through log/exp lookups; at or above it, it builds a 256-entry product
/// table first. (Both give identical bytes; the threshold only matters for
/// speed, and the differential tests straddle it.)
inline constexpr std::size_t kGf256TableThreshold = 1024;

// ---------------------------------------------------------------------------
// Region kernels. dst and src must not overlap (CHECKed).
// ---------------------------------------------------------------------------

/// dst[i] ^= src[i]. (Addition == subtraction in characteristic 2; this is
/// the add/sub kernel for GF(2^8) and, bytewise, GF(2^16).)
void xor_region(std::uint8_t* dst, const std::uint8_t* src, std::size_t n);

/// dst[i] = a * src[i] over GF(2^8).
void mul_region_gf256(std::uint8_t* dst, const std::uint8_t* src,
                      std::uint8_t a, std::size_t n);

/// dst[i] ^= a * src[i] over GF(2^8) ("axpy").
void axpy_region_gf256(std::uint8_t* dst, std::uint8_t a,
                       const std::uint8_t* src, std::size_t n);

/// dst[i] = a * dst[i] over GF(2^8) (in place; no aliasing concern).
void scale_region_gf256(std::uint8_t* dst, std::uint8_t a, std::size_t n);

}  // namespace causalec::gf::kernels
