// The Field concept.
//
// A Field type in this library is a stateless tag type with static members
// operating on its element type. This keeps field arithmetic inlineable and
// lets linear-algebra / coding code be templated with zero overhead.
//
// Required interface:
//   using Elem = <unsigned integral element representation>;
//   static constexpr Elem zero, one;
//   static Elem add(Elem, Elem), sub(Elem, Elem), mul(Elem, Elem);
//   static Elem neg(Elem), inv(Elem);           // inv(0) is UB (checked)
//   static Elem from_int(std::uint64_t);        // canonical embedding
//   static constexpr std::size_t kElemBytes;    // wire size of one element
//   static constexpr std::uint64_t kOrder;      // number of field elements
//   static constexpr bool kOddCharacteristic;
#pragma once

#include <concepts>
#include <cstdint>

namespace causalec::gf {

template <typename F>
concept Field = requires(typename F::Elem a, typename F::Elem b) {
  { F::zero } -> std::convertible_to<typename F::Elem>;
  { F::one } -> std::convertible_to<typename F::Elem>;
  { F::add(a, b) } -> std::same_as<typename F::Elem>;
  { F::sub(a, b) } -> std::same_as<typename F::Elem>;
  { F::mul(a, b) } -> std::same_as<typename F::Elem>;
  { F::neg(a) } -> std::same_as<typename F::Elem>;
  { F::inv(a) } -> std::same_as<typename F::Elem>;
  { F::from_int(std::uint64_t{}) } -> std::same_as<typename F::Elem>;
  { F::kElemBytes } -> std::convertible_to<std::size_t>;
  { F::kOrder } -> std::convertible_to<std::uint64_t>;
  { F::kOddCharacteristic } -> std::convertible_to<bool>;
};

/// a / b.
template <Field F>
typename F::Elem div(typename F::Elem a, typename F::Elem b) {
  return F::mul(a, F::inv(b));
}

/// a^e by square-and-multiply.
template <Field F>
typename F::Elem pow(typename F::Elem a, std::uint64_t e) {
  typename F::Elem result = F::one;
  typename F::Elem base = a;
  while (e != 0) {
    if (e & 1) result = F::mul(result, base);
    base = F::mul(base, base);
    e >>= 1;
  }
  return result;
}

}  // namespace causalec::gf
