// GF(2^16) with primitive polynomial x^16+x^12+x^3+x+1 (0x1100B).
// Tables are built once at first use (they are ~380 KiB, too large to bake
// into every translation unit as constexpr data).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/expect.h"

namespace causalec::gf {

class GF2_16 {
 public:
  using Elem = std::uint16_t;

  static constexpr Elem zero = 0;
  static constexpr Elem one = 1;
  static constexpr std::size_t kElemBytes = 2;
  static constexpr std::uint64_t kOrder = 65536;
  static constexpr bool kOddCharacteristic = false;
  static constexpr std::uint32_t kPoly = 0x1100B;

  static Elem add(Elem a, Elem b) { return a ^ b; }
  static Elem sub(Elem a, Elem b) { return a ^ b; }
  static Elem neg(Elem a) { return a; }

  static Elem mul(Elem a, Elem b) {
    if (a == 0 || b == 0) return 0;
    const Tables& t = tables();
    return t.exp[static_cast<std::size_t>(t.log[a]) + t.log[b]];
  }

  static Elem inv(Elem a) {
    CEC_CHECK_MSG(a != 0, "GF2_16 inverse of zero");
    const Tables& t = tables();
    return t.exp[65535 - t.log[a]];
  }

  static Elem from_int(std::uint64_t x) {
    return static_cast<Elem>(x & 0xFFFF);
  }

  static Elem generator() { return 2; }

 private:
  struct Tables {
    std::uint16_t exp[131070];
    std::uint16_t log[65536];
  };
  static const Tables& tables();
};

}  // namespace causalec::gf
