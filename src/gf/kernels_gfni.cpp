// GFNI/AVX-512 kernel tier: GF(2^8) multiplication by a constant `a` is a
// linear map over GF(2), so it can be expressed as an 8x8 bit matrix and
// executed by GF2P8AFFINEQB -- one instruction multiplies 64 bytes. Note
// the instruction's *affine* form is polynomial-agnostic: the matrix below
// encodes multiplication in our 0x11D field even though GFNI's dedicated
// multiply instruction (GF2P8MULB) is hard-wired to the AES 0x11B
// polynomial and therefore unusable here.
//
// Tails are handled with AVX-512BW byte-masked loads/stores (fault
// suppression on masked-out lanes is architectural), so every length runs
// the full-width path with no scalar remainder loop.
//
// Compiled with -mgfni -mavx512f -mavx512bw -mavx512vl (see
// src/gf/CMakeLists.txt); only installed after the runtime CPU check in
// kernels.cpp passed.
#include "gf/kernels_impl.h"

#if defined(CAUSALEC_KERNELS_GFNI)

#include <immintrin.h>

namespace causalec::gf::kernels::detail {

namespace {

/// 8x8 GF(2) bit matrix for y = a * x over GF(2^8) mod 0x11D, packed for
/// GF2P8AFFINEQB: byte (7 - i) of the qword is the row producing output
/// bit i, and bit j of that row is bit i of a * x^j (the image of basis
/// element x^j). Built in ~16 shifts per coefficient; amortized over the
/// region like the nibble tables of the PSHUFB tiers.
inline std::uint64_t affine_matrix(std::uint8_t a) {
  std::uint8_t m[8];  // m[j] = a * x^j
  std::uint8_t cur = a;
  for (int j = 0; j < 8; ++j) {
    m[j] = cur;
    cur = static_cast<std::uint8_t>((cur << 1) ^ ((cur & 0x80) ? 0x1D : 0));
  }
  std::uint64_t mat = 0;
  for (int i = 0; i < 8; ++i) {
    std::uint8_t row = 0;
    for (int j = 0; j < 8; ++j) {
      row |= static_cast<std::uint8_t>(((m[j] >> i) & 1) << j);
    }
    mat |= static_cast<std::uint64_t>(row) << (8 * (7 - i));
  }
  return mat;
}

inline __mmask64 tail_mask(std::size_t rem) {
  return rem >= 64 ? ~__mmask64{0} : ((__mmask64{1} << rem) - 1);
}

void gfni_xor(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i d = _mm512_loadu_si512(dst + i);
    const __m512i s = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i, _mm512_xor_si512(d, s));
  }
  if (i < n) {
    const __mmask64 k = tail_mask(n - i);
    const __m512i d = _mm512_maskz_loadu_epi8(k, dst + i);
    const __m512i s = _mm512_maskz_loadu_epi8(k, src + i);
    _mm512_mask_storeu_epi8(dst + i, k, _mm512_xor_si512(d, s));
  }
}

void gfni_mul(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t a,
              std::size_t n) {
  const __m512i mat =
      _mm512_set1_epi64(static_cast<long long>(affine_matrix(a)));
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i x = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i, _mm512_gf2p8affine_epi64_epi8(x, mat, 0));
  }
  if (i < n) {
    const __mmask64 k = tail_mask(n - i);
    const __m512i x = _mm512_maskz_loadu_epi8(k, src + i);
    _mm512_mask_storeu_epi8(dst + i, k,
                            _mm512_gf2p8affine_epi64_epi8(x, mat, 0));
  }
}

void gfni_axpy(std::uint8_t* dst, std::uint8_t a, const std::uint8_t* src,
               std::size_t n) {
  const __m512i mat =
      _mm512_set1_epi64(static_cast<long long>(affine_matrix(a)));
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i x = _mm512_loadu_si512(src + i);
    const __m512i d = _mm512_loadu_si512(dst + i);
    _mm512_storeu_si512(
        dst + i, _mm512_xor_si512(d, _mm512_gf2p8affine_epi64_epi8(x, mat, 0)));
  }
  if (i < n) {
    const __mmask64 k = tail_mask(n - i);
    const __m512i x = _mm512_maskz_loadu_epi8(k, src + i);
    const __m512i d = _mm512_maskz_loadu_epi8(k, dst + i);
    _mm512_mask_storeu_epi8(
        dst + i, k,
        _mm512_xor_si512(d, _mm512_gf2p8affine_epi64_epi8(x, mat, 0)));
  }
}

void gfni_scale(std::uint8_t* dst, std::uint8_t a, std::size_t n) {
  gfni_mul(dst, dst, a, n);
}

/// Fused multi-axpy: one pass over dst, one affine+xor per term per block.
/// At 4 KiB values this is the difference between K streaming passes over
/// the codeword symbol and one.
void gfni_axpy_batch(std::uint8_t* dst, const BatchTerm* terms,
                     std::size_t num_terms, std::size_t n) {
  __m512i mats[kMaxBatchTerms];
  for (std::size_t t = 0; t < num_terms; ++t) {
    mats[t] =
        _mm512_set1_epi64(static_cast<long long>(affine_matrix(terms[t].coeff)));
  }
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    __m512i acc = _mm512_loadu_si512(dst + i);
    for (std::size_t t = 0; t < num_terms; ++t) {
      const __m512i x = _mm512_loadu_si512(terms[t].src + i);
      acc = _mm512_xor_si512(acc, _mm512_gf2p8affine_epi64_epi8(x, mats[t], 0));
    }
    _mm512_storeu_si512(dst + i, acc);
  }
  if (i < n) {
    const __mmask64 k = tail_mask(n - i);
    __m512i acc = _mm512_maskz_loadu_epi8(k, dst + i);
    for (std::size_t t = 0; t < num_terms; ++t) {
      const __m512i x = _mm512_maskz_loadu_epi8(k, terms[t].src + i);
      acc = _mm512_xor_si512(acc, _mm512_gf2p8affine_epi64_epi8(x, mats[t], 0));
    }
    _mm512_mask_storeu_epi8(dst + i, k, acc);
  }
}

constexpr KernelTable kGfniTable = {gfni_xor, gfni_mul, gfni_axpy, gfni_scale,
                                    gfni_axpy_batch};

}  // namespace

const KernelTable* gfni_kernel_table() { return &kGfniTable; }

}  // namespace causalec::gf::kernels::detail

#else  // !CAUSALEC_KERNELS_GFNI

namespace causalec::gf::kernels::detail {

const KernelTable* gfni_kernel_table() { return nullptr; }

}  // namespace causalec::gf::kernels::detail

#endif
