// causalec_cli -- run a CausalEC experiment from the command line.
//
//   causalec_cli [options]
//     --code rs|paper53|sixdc|random   code family          (default rs)
//     --servers N                      server count          (default 6)
//     --objects K                      object count          (default 4)
//     --value-bytes B                  object size           (default 1024)
//     --latency-ms L                   one-way link latency  (default 10)
//     --gc-ms T                        GC period             (default 50)
//     --ops COUNT                      operations to issue   (default 500)
//     --write-frac F                   write fraction        (default 0.5)
//     --zipf THETA                     key skew, 0 = uniform (default 0)
//     --clients-per-server C           sessions per server   (default 2)
//     --seed S                         RNG seed              (default 1)
//     --lamport                        Lamport metadata accounting
//     --nearest-fanout                 footnote-14 read fan-out
//     --check                          run the causal-consistency checker
//     --trace-out FILE                 write a Chrome trace_event JSON
//     --trace-jsonl FILE               write the trace as JSONL
//     --metrics-out FILE               write the metrics registry as JSON
//     --storage-out FILE               write per-server storage time series
//     --sample-ms T                    storage sampling period (default 50)
//
// Prints workload stats, per-message-type traffic, storage convergence,
// and (with --check) the checker verdict. Trace files load in
// chrome://tracing or https://ui.perfetto.dev.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "causalec/cluster.h"
#include "common/random.h"
#include "consistency/causal_checker.h"
#include "consistency/recorder.h"
#include "erasure/codes.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "sim/latency.h"
#include "workload/driver.h"

using namespace causalec;
using erasure::Value;
using sim::kMillisecond;
using sim::kSecond;

namespace {

struct Options {
  std::string code = "rs";
  std::size_t servers = 6;
  std::size_t objects = 4;
  std::size_t value_bytes = 1024;
  double latency_ms = 10;
  double gc_ms = 50;
  int ops = 500;
  double write_frac = 0.5;
  double zipf = 0;
  int clients_per_server = 2;
  std::uint64_t seed = 1;
  bool lamport = false;
  bool nearest_fanout = false;
  bool check = false;
  std::string trace_out;
  std::string trace_jsonl;
  std::string metrics_out;
  std::string storage_out;
  double sample_ms = 50;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--code rs|paper53|sixdc|random] [--servers N] "
               "[--objects K]\n  [--value-bytes B] [--latency-ms L] "
               "[--gc-ms T] [--ops N] [--write-frac F]\n  [--zipf THETA] "
               "[--clients-per-server C] [--seed S] [--lamport]\n"
               "  [--nearest-fanout] [--check] [--trace-out FILE] "
               "[--trace-jsonl FILE]\n  [--metrics-out FILE] "
               "[--storage-out FILE] [--sample-ms T]\n",
               argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--code") {
      opt.code = next();
    } else if (arg == "--servers") {
      opt.servers = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--objects") {
      opt.objects = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--value-bytes") {
      opt.value_bytes = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--latency-ms") {
      opt.latency_ms = std::strtod(next(), nullptr);
    } else if (arg == "--gc-ms") {
      opt.gc_ms = std::strtod(next(), nullptr);
    } else if (arg == "--ops") {
      opt.ops = std::atoi(next());
    } else if (arg == "--write-frac") {
      opt.write_frac = std::strtod(next(), nullptr);
    } else if (arg == "--zipf") {
      opt.zipf = std::strtod(next(), nullptr);
    } else if (arg == "--clients-per-server") {
      opt.clients_per_server = std::atoi(next());
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--lamport") {
      opt.lamport = true;
    } else if (arg == "--nearest-fanout") {
      opt.nearest_fanout = true;
    } else if (arg == "--check") {
      opt.check = true;
    } else if (arg == "--trace-out") {
      opt.trace_out = next();
    } else if (arg == "--trace-jsonl") {
      opt.trace_jsonl = next();
    } else if (arg == "--metrics-out") {
      opt.metrics_out = next();
    } else if (arg == "--storage-out") {
      opt.storage_out = next();
    } else if (arg == "--sample-ms") {
      opt.sample_ms = std::strtod(next(), nullptr);
    } else {
      usage(argv[0]);
    }
  }
  return opt;
}

erasure::CodePtr make_code(const Options& opt) {
  if (opt.code == "rs") {
    return erasure::make_systematic_rs(opt.servers, opt.objects,
                                       opt.value_bytes);
  }
  if (opt.code == "paper53") {
    return erasure::make_paper_5_3_gf256(opt.value_bytes);
  }
  if (opt.code == "sixdc") {
    return erasure::make_six_dc_cross_object(opt.value_bytes);
  }
  if (opt.code == "random") {
    return erasure::make_random_code(opt.seed, opt.servers, opt.objects,
                                     opt.value_bytes, 0.5);
  }
  std::fprintf(stderr, "unknown code family '%s'\n", opt.code.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  auto code = make_code(opt);
  const std::size_t n = code->num_servers();
  const std::size_t k = code->num_objects();

  ClusterConfig config;
  config.gc_period = static_cast<SimTime>(opt.gc_ms * 1e6);
  config.seed = opt.seed;
  config.server.metadata =
      opt.lamport ? MetadataMode::kLamport : MetadataMode::kVectorClock;
  config.server.fanout = opt.nearest_fanout
                             ? ReadFanout::kNearestRecoverySet
                             : ReadFanout::kBroadcast;

  // Observability sinks, enabled only when an output flag asks for them.
  std::unique_ptr<obs::Tracer> tracer;
  std::unique_ptr<obs::MetricsRegistry> metrics;
  std::unique_ptr<obs::TimeSeries> storage_series;
  if (!opt.trace_out.empty() || !opt.trace_jsonl.empty()) {
    tracer = std::make_unique<obs::Tracer>();
    config.obs.tracer = tracer.get();
  }
  if (!opt.metrics_out.empty()) {
    metrics = std::make_unique<obs::MetricsRegistry>();
    config.obs.metrics = metrics.get();
  }
  if (!opt.storage_out.empty()) {
    storage_series =
        std::make_unique<obs::TimeSeries>(Cluster::storage_series_columns());
    config.storage_series = storage_series.get();
    config.storage_sample_period =
        static_cast<SimTime>(opt.sample_ms * 1e6);
  }

  Cluster cluster(code,
                  std::make_unique<sim::ConstantLatency>(
                      static_cast<SimTime>(opt.latency_ms * 1e6)),
                  config);
  std::printf("cluster: %s, %.1f ms links, GC every %.0f ms\n",
              code->describe().c_str(), opt.latency_ms, opt.gc_ms);

  consistency::History history;
  auto now = [&cluster] { return cluster.sim().now(); };
  std::vector<std::unique_ptr<consistency::SessionRecorder>> sessions;
  for (NodeId s = 0; s < n; ++s) {
    for (int c = 0; c < opt.clients_per_server; ++c) {
      sessions.push_back(std::make_unique<consistency::SessionRecorder>(
          &cluster.make_client(s), &history, now));
    }
  }

  // Closed-ish loop: round-robin sessions, skipping busy ones.
  Rng rng(opt.seed * 17 + 3);
  workload::KeyPicker picker(k, opt.zipf, opt.seed);
  int issued = 0;
  std::vector<SimTime> read_latencies;
  while (issued < opt.ops) {
    auto& session = *sessions[rng.next_below(sessions.size())];
    if (session.busy()) {
      cluster.run_for(kMillisecond);
      continue;
    }
    const ObjectId x = picker.next();
    if (rng.next_bool(opt.write_frac)) {
      Value v(opt.value_bytes);
      for (auto& b : v) b = static_cast<std::uint8_t>(rng.next_u64());
      session.write(x, std::move(v));
    } else {
      const SimTime start = cluster.sim().now();
      session.read(x, [&read_latencies, start, &cluster](const Value&,
                                                         const Tag&) {
        read_latencies.push_back(cluster.sim().now() - start);
      });
    }
    ++issued;
    cluster.run_for(rng.next_below(6) * kMillisecond);
  }
  cluster.settle();

  std::printf("\nworkload: %d ops (%.0f%% writes), %zu sessions, zipf "
              "theta %.2f\n",
              opt.ops, opt.write_frac * 100, sessions.size(), opt.zipf);
  std::printf("read latency: mean %.1f ms, p99 %.1f ms, max %.1f ms "
              "(%zu reads)\n",
              workload::DriverStats::mean_ms(read_latencies),
              static_cast<double>(
                  workload::DriverStats::percentile(read_latencies, 0.99)) /
                  1e6,
              static_cast<double>(
                  workload::DriverStats::max(read_latencies)) /
                  1e6,
              read_latencies.size());

  const auto& stats = cluster.sim().stats();
  std::printf("\ntraffic: %llu messages, %llu bytes total\n",
              static_cast<unsigned long long>(stats.total_messages),
              static_cast<unsigned long long>(stats.total_bytes));
  for (const auto& [type, per] : stats.by_type) {
    std::printf("  %-18s %8llu msgs %12llu bytes\n", type.c_str(),
                static_cast<unsigned long long>(per.count),
                static_cast<unsigned long long>(per.bytes));
  }

  std::printf("\nstorage converged: %s\n",
              cluster.storage_converged() ? "yes" : "NO");
  std::uint64_t errors = 0;
  for (NodeId s = 0; s < n; ++s) {
    errors += cluster.server(s).counters().error1_events +
              cluster.server(s).counters().error2_events;
  }
  std::printf("Error1/Error2 events: %llu\n",
              static_cast<unsigned long long>(errors));

  // Flush observability artifacts.
  const auto write_file = [](const std::string& path, const auto& emit) {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
      return;
    }
    emit(out);
    std::printf("wrote %s\n", path.c_str());
  };
  if (!opt.trace_out.empty()) {
    write_file(opt.trace_out,
               [&](std::ostream& o) { tracer->write_chrome_trace(o); });
  }
  if (!opt.trace_jsonl.empty()) {
    write_file(opt.trace_jsonl,
               [&](std::ostream& o) { tracer->write_jsonl(o); });
  }
  if (!opt.metrics_out.empty()) {
    // Surface the tracer's overflow count next to the metrics it would have
    // explained: a nonzero trace.dropped means the trace files are partial.
    if (tracer) {
      metrics->gauge("trace.dropped")
          .set(static_cast<std::int64_t>(tracer->dropped()));
    }
    write_file(opt.metrics_out,
               [&](std::ostream& o) { metrics->write_json(o); });
    const auto snap = metrics->snapshot();
    if (auto it = snap.histograms.find("server.read_latency_ns");
        it != snap.histograms.end() && it->second.count > 0) {
      std::printf("metrics: read latency p50 %.1f ms, p90 %.1f ms, p99 "
                  "%.1f ms (%llu samples)\n",
                  it->second.percentile(0.50) / 1e6,
                  it->second.percentile(0.90) / 1e6,
                  it->second.percentile(0.99) / 1e6,
                  static_cast<unsigned long long>(it->second.count));
    }
  }
  if (!opt.storage_out.empty()) {
    write_file(opt.storage_out,
               [&](std::ostream& o) { storage_series->write_json(o); });
  }

  if (opt.check) {
    const auto causal = consistency::check_causal_consistency(history);
    const auto guarantees = consistency::check_session_guarantees(history);
    std::printf("\ncausal consistency: %s\n",
                causal.ok ? "PASS" : causal.violations.front().c_str());
    std::printf("session guarantees: %s\n",
                guarantees.ok ? "PASS"
                              : guarantees.violations.front().c_str());
    if (!causal.ok || !guarantees.ok) return 1;
  }
  return 0;
}
