// causalec_cli -- run a CausalEC experiment from the command line.
//
//   causalec_cli [options]
//     --code rs|paper53|sixdc|random   code family          (default rs)
//     --servers N                      server count          (default 6)
//     --objects K                      object count          (default 4)
//     --value-bytes B                  object size           (default 1024)
//     --latency-ms L                   one-way link latency  (default 10)
//     --gc-ms T                        GC period             (default 50)
//     --ops COUNT                      operations to issue   (default 500)
//     --write-frac F                   write fraction        (default 0.5)
//     --zipf THETA                     key skew, 0 = uniform (default 0)
//     --clients-per-server C           sessions per server   (default 2)
//     --seed S                         RNG seed              (default 1)
//     --lamport                        Lamport metadata accounting
//     --nearest-fanout                 footnote-14 read fan-out
//     --check                          run the causal-consistency checker
//
// Prints workload stats, per-message-type traffic, storage convergence,
// and (with --check) the checker verdict.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "causalec/cluster.h"
#include "common/random.h"
#include "consistency/causal_checker.h"
#include "consistency/recorder.h"
#include "erasure/codes.h"
#include "sim/latency.h"
#include "workload/driver.h"

using namespace causalec;
using erasure::Value;
using sim::kMillisecond;
using sim::kSecond;

namespace {

struct Options {
  std::string code = "rs";
  std::size_t servers = 6;
  std::size_t objects = 4;
  std::size_t value_bytes = 1024;
  double latency_ms = 10;
  double gc_ms = 50;
  int ops = 500;
  double write_frac = 0.5;
  double zipf = 0;
  int clients_per_server = 2;
  std::uint64_t seed = 1;
  bool lamport = false;
  bool nearest_fanout = false;
  bool check = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--code rs|paper53|sixdc|random] [--servers N] "
               "[--objects K]\n  [--value-bytes B] [--latency-ms L] "
               "[--gc-ms T] [--ops N] [--write-frac F]\n  [--zipf THETA] "
               "[--clients-per-server C] [--seed S] [--lamport]\n"
               "  [--nearest-fanout] [--check]\n",
               argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--code") {
      opt.code = next();
    } else if (arg == "--servers") {
      opt.servers = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--objects") {
      opt.objects = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--value-bytes") {
      opt.value_bytes = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--latency-ms") {
      opt.latency_ms = std::strtod(next(), nullptr);
    } else if (arg == "--gc-ms") {
      opt.gc_ms = std::strtod(next(), nullptr);
    } else if (arg == "--ops") {
      opt.ops = std::atoi(next());
    } else if (arg == "--write-frac") {
      opt.write_frac = std::strtod(next(), nullptr);
    } else if (arg == "--zipf") {
      opt.zipf = std::strtod(next(), nullptr);
    } else if (arg == "--clients-per-server") {
      opt.clients_per_server = std::atoi(next());
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--lamport") {
      opt.lamport = true;
    } else if (arg == "--nearest-fanout") {
      opt.nearest_fanout = true;
    } else if (arg == "--check") {
      opt.check = true;
    } else {
      usage(argv[0]);
    }
  }
  return opt;
}

erasure::CodePtr make_code(const Options& opt) {
  if (opt.code == "rs") {
    return erasure::make_systematic_rs(opt.servers, opt.objects,
                                       opt.value_bytes);
  }
  if (opt.code == "paper53") {
    return erasure::make_paper_5_3_gf256(opt.value_bytes);
  }
  if (opt.code == "sixdc") {
    return erasure::make_six_dc_cross_object(opt.value_bytes);
  }
  if (opt.code == "random") {
    return erasure::make_random_code(opt.seed, opt.servers, opt.objects,
                                     opt.value_bytes, 0.5);
  }
  std::fprintf(stderr, "unknown code family '%s'\n", opt.code.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  auto code = make_code(opt);
  const std::size_t n = code->num_servers();
  const std::size_t k = code->num_objects();

  ClusterConfig config;
  config.gc_period = static_cast<SimTime>(opt.gc_ms * 1e6);
  config.seed = opt.seed;
  config.server.metadata =
      opt.lamport ? MetadataMode::kLamport : MetadataMode::kVectorClock;
  config.server.fanout = opt.nearest_fanout
                             ? ReadFanout::kNearestRecoverySet
                             : ReadFanout::kBroadcast;
  Cluster cluster(code,
                  std::make_unique<sim::ConstantLatency>(
                      static_cast<SimTime>(opt.latency_ms * 1e6)),
                  config);
  std::printf("cluster: %s, %.1f ms links, GC every %.0f ms\n",
              code->describe().c_str(), opt.latency_ms, opt.gc_ms);

  consistency::History history;
  auto now = [&cluster] { return cluster.sim().now(); };
  std::vector<std::unique_ptr<consistency::SessionRecorder>> sessions;
  for (NodeId s = 0; s < n; ++s) {
    for (int c = 0; c < opt.clients_per_server; ++c) {
      sessions.push_back(std::make_unique<consistency::SessionRecorder>(
          &cluster.make_client(s), &history, now));
    }
  }

  // Closed-ish loop: round-robin sessions, skipping busy ones.
  Rng rng(opt.seed * 17 + 3);
  workload::KeyPicker picker(k, opt.zipf, opt.seed);
  int issued = 0;
  std::vector<SimTime> read_latencies;
  while (issued < opt.ops) {
    auto& session = *sessions[rng.next_below(sessions.size())];
    if (session.busy()) {
      cluster.run_for(kMillisecond);
      continue;
    }
    const ObjectId x = picker.next();
    if (rng.next_bool(opt.write_frac)) {
      Value v(opt.value_bytes);
      for (auto& b : v) b = static_cast<std::uint8_t>(rng.next_u64());
      session.write(x, std::move(v));
    } else {
      const SimTime start = cluster.sim().now();
      session.read(x, [&read_latencies, start, &cluster](const Value&,
                                                         const Tag&) {
        read_latencies.push_back(cluster.sim().now() - start);
      });
    }
    ++issued;
    cluster.run_for(rng.next_below(6) * kMillisecond);
  }
  cluster.settle();

  std::printf("\nworkload: %d ops (%.0f%% writes), %zu sessions, zipf "
              "theta %.2f\n",
              opt.ops, opt.write_frac * 100, sessions.size(), opt.zipf);
  std::printf("read latency: mean %.1f ms, p99 %.1f ms, max %.1f ms "
              "(%zu reads)\n",
              workload::DriverStats::mean_ms(read_latencies),
              static_cast<double>(
                  workload::DriverStats::percentile(read_latencies, 0.99)) /
                  1e6,
              static_cast<double>(
                  workload::DriverStats::max(read_latencies)) /
                  1e6,
              read_latencies.size());

  const auto& stats = cluster.sim().stats();
  std::printf("\ntraffic: %llu messages, %llu bytes total\n",
              static_cast<unsigned long long>(stats.total_messages),
              static_cast<unsigned long long>(stats.total_bytes));
  for (const auto& [type, per] : stats.by_type) {
    std::printf("  %-18s %8llu msgs %12llu bytes\n", type.c_str(),
                static_cast<unsigned long long>(per.count),
                static_cast<unsigned long long>(per.bytes));
  }

  std::printf("\nstorage converged: %s\n",
              cluster.storage_converged() ? "yes" : "NO");
  std::uint64_t errors = 0;
  for (NodeId s = 0; s < n; ++s) {
    errors += cluster.server(s).counters().error1_events +
              cluster.server(s).counters().error2_events;
  }
  std::printf("Error1/Error2 events: %llu\n",
              static_cast<unsigned long long>(errors));

  if (opt.check) {
    const auto causal = consistency::check_causal_consistency(history);
    const auto guarantees = consistency::check_session_guarantees(history);
    std::printf("\ncausal consistency: %s\n",
                causal.ok ? "PASS" : causal.violations.front().c_str());
    std::printf("session guarantees: %s\n",
                guarantees.ok ? "PASS"
                              : guarantees.violations.front().c_str());
    if (!causal.ok || !guarantees.ok) return 1;
  }
  return 0;
}
