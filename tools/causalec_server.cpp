// causalec_server: one CausalEC server automaton as a real daemon process.
//
// One process = one node of the deployment: shard-per-core epoll IO, the
// single-threaded server automaton, and (with --data-dir) a durable journal
// that survives SIGKILL and rejoins the cluster on restart. Spawned n times
// (by tests/net_cluster_test.cpp, causalec_client --spawn, or by hand) it
// forms a full cluster over TCP.
//
//   causalec_server --node 0 --listen 127.0.0.1:7400
//     --peers 127.0.0.1:7400,127.0.0.1:7401,...
//     --servers 5 --objects 3 --value-bytes 4096
//     --data-dir /var/tmp/cec/s0 --shards 2
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "erasure/codes.h"
#include "net/node_daemon.h"

using namespace causalec;

namespace {

std::atomic<bool> g_shutdown{false};

void on_signal(int) { g_shutdown.store(true); }

[[noreturn]] void usage(const char* what) {
  std::fprintf(stderr, "causalec_server: %s\n", what);
  std::fprintf(
      stderr,
      "usage: causalec_server --node N --listen HOST:PORT --peers "
      "H:P,H:P,... [--servers N] [--objects K] [--value-bytes B] "
      "[--code rs|paper53] [--data-dir DIR] [--shards S] [--gc-ms MS] "
      "[--snapshot-ms MS]\n");
  std::exit(2);
}

/// "a/b/c" -> {"a", "b", "c"}; a leading '/' stays on the first element's
/// prefix via the empty-segment join in the caller.
std::vector<std::string> split_path(const std::string& path) {
  std::vector<std::string> out;
  std::string part;
  for (const char c : path) {
    if (c == '/') {
      out.push_back(part);
      part.clear();
    } else {
      part += c;
    }
  }
  out.push_back(part);
  return out;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) {
      out.push_back(csv.substr(pos));
      break;
    }
    out.push_back(csv.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  net::NodeDaemonConfig config;
  std::size_t servers = 5;
  std::size_t objects = 3;
  std::size_t value_bytes = 64;
  std::string code_name = "rs";
  std::string listen = "127.0.0.1:0";
  std::string peers_csv;
  long gc_ms = 10;
  long snapshot_ms = 100;
  bool node_set = false;

  auto next_arg = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing argument value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--node") == 0) {
      config.node = static_cast<NodeId>(std::strtoul(next_arg(i), nullptr, 10));
      node_set = true;
    } else if (std::strcmp(argv[i], "--listen") == 0) {
      listen = next_arg(i);
    } else if (std::strcmp(argv[i], "--peers") == 0) {
      peers_csv = next_arg(i);
    } else if (std::strcmp(argv[i], "--servers") == 0) {
      servers = std::strtoul(next_arg(i), nullptr, 10);
    } else if (std::strcmp(argv[i], "--objects") == 0) {
      objects = std::strtoul(next_arg(i), nullptr, 10);
    } else if (std::strcmp(argv[i], "--value-bytes") == 0) {
      value_bytes = std::strtoul(next_arg(i), nullptr, 10);
    } else if (std::strcmp(argv[i], "--code") == 0) {
      code_name = next_arg(i);
    } else if (std::strcmp(argv[i], "--data-dir") == 0) {
      config.data_dir = next_arg(i);
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      config.shards = std::strtoul(next_arg(i), nullptr, 10);
    } else if (std::strcmp(argv[i], "--gc-ms") == 0) {
      gc_ms = std::strtol(next_arg(i), nullptr, 10);
    } else if (std::strcmp(argv[i], "--snapshot-ms") == 0) {
      snapshot_ms = std::strtol(next_arg(i), nullptr, 10);
    } else {
      usage((std::string("unknown flag ") + argv[i]).c_str());
    }
  }
  if (!node_set) usage("--node is required");
  if (peers_csv.empty()) usage("--peers is required");
  const auto addr = net::parse_host_port(listen);
  if (!addr.has_value()) usage("bad --listen address");
  config.listen_host = addr->first;
  config.listen_port = addr->second;
  config.peers = split_csv(peers_csv);
  config.gc_period = std::chrono::milliseconds(gc_ms);
  config.snapshot_period = std::chrono::milliseconds(snapshot_ms);

  erasure::CodePtr code;
  if (code_name == "rs") {
    code = erasure::make_systematic_rs(servers, objects, value_bytes);
  } else if (code_name == "paper53") {
    code = erasure::make_paper_5_3(value_bytes);
  } else {
    usage("unknown --code (rs|paper53)");
  }

  if (!config.data_dir.empty()) {
    // Best-effort create (parents too); DirBackend reports clearly if the
    // directory is truly unusable.
    std::string prefix;
    for (const std::string& part : split_path(config.data_dir)) {
      prefix += part;
      ::mkdir(prefix.c_str(), 0755);
      prefix += '/';
    }
  }

  struct sigaction sa{};
  sa.sa_handler = on_signal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  net::NodeDaemon daemon(std::move(code), std::move(config));
  daemon.start();
  std::printf("causalec_server: node %u listening on port %u (%s)\n",
              daemon.node(), daemon.listen_port(),
              daemon.recovered() ? "recovered" : "fresh");
  std::fflush(stdout);

  while (!g_shutdown.load()) {
    ::usleep(50'000);
  }
  std::printf("causalec_server: node %u shutting down\n", daemon.node());
  daemon.stop();
  return 0;
}
