// causalec_server: one CausalEC server automaton as a real daemon process.
//
// One process = one node of the deployment: shard-per-core epoll IO, the
// single-threaded server automaton, and (with --data-dir) a durable journal
// that survives SIGKILL and rejoins the cluster on restart. Spawned n times
// (by tests/net_cluster_test.cpp, causalec_client --spawn, or by hand) it
// forms a full cluster over TCP.
//
// The cluster shape (servers, objects, value bytes, code, every node's
// endpoint, routing groups) lives in a shared cluster config file
// (net/cluster_config.h) handed to every process:
//
//   causalec_server --node 0 --cluster /var/tmp/cec/cluster.conf
//     --data-dir /var/tmp/cec/s0 --shards 2
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/cluster_config.h"
#include "net/node_daemon.h"

using namespace causalec;

namespace {

std::atomic<bool> g_shutdown{false};

void on_signal(int) { g_shutdown.store(true); }

[[noreturn]] void usage(const char* what) {
  std::fprintf(stderr, "causalec_server: %s\n", what);
  std::fprintf(
      stderr,
      "usage: causalec_server --node N --cluster FILE [--listen HOST:PORT] "
      "[--data-dir DIR] [--shards S] [--gc-ms MS] [--snapshot-ms MS]\n");
  std::exit(2);
}

/// "a/b/c" -> {"a", "b", "c"}; a leading '/' stays on the first element's
/// prefix via the empty-segment join in the caller.
std::vector<std::string> split_path(const std::string& path) {
  std::vector<std::string> out;
  std::string part;
  for (const char c : path) {
    if (c == '/') {
      out.push_back(part);
      part.clear();
    } else {
      part += c;
    }
  }
  out.push_back(part);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  net::NodeDaemonConfig config;
  std::string cluster_path;
  std::string listen;  // empty = the node's endpoint from the cluster file
  long gc_ms = 10;
  long snapshot_ms = 100;
  bool node_set = false;

  auto next_arg = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing argument value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--node") == 0) {
      config.node = static_cast<NodeId>(std::strtoul(next_arg(i), nullptr, 10));
      node_set = true;
    } else if (std::strcmp(argv[i], "--cluster") == 0) {
      cluster_path = next_arg(i);
    } else if (std::strcmp(argv[i], "--listen") == 0) {
      listen = next_arg(i);
    } else if (std::strcmp(argv[i], "--data-dir") == 0) {
      config.data_dir = next_arg(i);
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      config.shards = std::strtoul(next_arg(i), nullptr, 10);
    } else if (std::strcmp(argv[i], "--gc-ms") == 0) {
      gc_ms = std::strtol(next_arg(i), nullptr, 10);
    } else if (std::strcmp(argv[i], "--snapshot-ms") == 0) {
      snapshot_ms = std::strtol(next_arg(i), nullptr, 10);
    } else {
      usage((std::string("unknown flag ") + argv[i]).c_str());
    }
  }
  if (!node_set) usage("--node is required");
  if (cluster_path.empty()) usage("--cluster is required");
  std::string error;
  const auto cluster = net::load_cluster_config(cluster_path, &error);
  if (!cluster.has_value()) {
    usage(("bad --cluster file: " + error).c_str());
  }
  if (config.node >= cluster->num_servers) {
    usage("--node is outside the cluster's server range");
  }
  if (listen.empty()) listen = cluster->endpoints[config.node];
  const auto addr = net::parse_host_port(listen);
  if (!addr.has_value()) usage("bad --listen address");
  config.listen_host = addr->first;
  config.listen_port = addr->second;
  config.peers = cluster->endpoints;
  config.gc_period = std::chrono::milliseconds(gc_ms);
  config.snapshot_period = std::chrono::milliseconds(snapshot_ms);

  erasure::CodePtr code = cluster->make_code();
  if (code == nullptr) usage("cluster config names an unbuildable code");

  if (!config.data_dir.empty()) {
    // Best-effort create (parents too); DirBackend reports clearly if the
    // directory is truly unusable.
    std::string prefix;
    for (const std::string& part : split_path(config.data_dir)) {
      prefix += part;
      ::mkdir(prefix.c_str(), 0755);
      prefix += '/';
    }
  }

  struct sigaction sa{};
  sa.sa_handler = on_signal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  net::NodeDaemon daemon(std::move(code), std::move(config));
  daemon.start();
  std::printf("causalec_server: node %u listening on port %u (%s)\n",
              daemon.node(), daemon.listen_port(),
              daemon.recovered() ? "recovered" : "fresh");
  std::fflush(stdout);

  while (!g_shutdown.load()) {
    ::usleep(50'000);
  }
  std::printf("causalec_server: node %u shutting down\n", daemon.node());
  daemon.stop();
  return 0;
}
