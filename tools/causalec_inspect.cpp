// causalec_inspect -- pretty-print a CausalEC server's internals.
//
//   causalec_inspect --demo [--servers N] [--ops N] [--seed S]
//       Run a short simulated workload and dump every server live:
//       vector clock, InQueue depth, DelL entries, pending reads,
//       plan-cache and Buffer-arena counters, and the flight-recorder
//       tail (obs/flight_recorder.h).
//
//   causalec_inspect --snapshot DIR --node N
//       Load server N's durable state (snapshot + WAL) from a DirBackend
//       directory written by a persisted Cluster/ThreadedCluster run and
//       dump it offline -- what a crashed node knew, without starting it.
//
//   causalec_inspect --flight FILE
//       Pretty-print a flight-recorder JSON dump (e.g. one element of a
//       chaos replay bundle's "flight" array).
//
//   causalec_inspect --gf-tiers
//       Print the GF kernel tiers available on this CPU/build, one per
//       line (scalar/sliced/ssse3/avx2/gfni). Scripts use this to loop
//       CAUSALEC_GF_KERNEL over exactly the runnable tiers -- see
//       tools/run_sanitized_tests.sh.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "causalec/cluster.h"
#include "common/random.h"
#include "erasure/buffer.h"
#include "erasure/codes.h"
#include "gf/kernels.h"
#include "obs/flight_recorder.h"
#include "persist/backend.h"
#include "persist/journal.h"
#include "sim/latency.h"

using namespace causalec;

namespace {

struct Options {
  bool demo = false;
  std::string snapshot_dir;
  std::string flight_file;
  NodeId node = 0;
  std::size_t servers = 5;
  int ops = 40;
  std::uint64_t seed = 1;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --demo [--servers N] [--ops N] [--seed S]\n"
               "       %s --snapshot DIR --node N\n"
               "       %s --flight FILE\n"
               "       %s --gf-tiers\n",
               argv0, argv0, argv0, argv0);
  std::exit(2);
}

/// One available tier name per line, machine-consumable (no header); the
/// order is ascending Tier, so the last line is the auto-dispatch choice.
int run_gf_tiers() {
  namespace k = gf::kernels;
  for (int t = 0; t < k::kNumTiers; ++t) {
    const auto tier = static_cast<k::Tier>(t);
    if (k::tier_available(tier)) std::printf("%s\n", k::tier_name(tier));
  }
  return 0;
}

std::string tag_str(const Tag& tag) {
  std::ostringstream out;
  out << tag;
  return out.str();
}

void print_flight_tail(const std::vector<obs::FlightEvent>& events,
                       std::size_t max_events = 16) {
  const std::size_t begin =
      events.size() > max_events ? events.size() - max_events : 0;
  std::printf("  flight tail (%zu of %zu):\n", events.size() - begin,
              events.size());
  for (std::size_t i = begin; i < events.size(); ++i) {
    std::printf("    %s\n",
                obs::flight_event_to_string(events[i]).c_str());
  }
}

void print_server(const Server& server, NodeId id) {
  const std::size_t objects = server.code().num_objects();
  std::ostringstream vc;
  vc << server.clock();
  std::printf("server s%u\n", static_cast<unsigned>(id));
  std::printf("  vector clock: %s\n", vc.str().c_str());

  const StorageStats stats = server.storage();
  std::printf("  storage: codeword %zu B, history %zu entries (%zu B), "
              "InQueue %zu, ReadL %zu, DelL %zu\n",
              stats.codeword_bytes, stats.history_entries,
              stats.history_bytes, stats.inqueue_entries,
              stats.readl_entries, stats.dell_entries);

  std::printf("  InQueue depth %zu:\n", server.inqueue().size());
  for (const auto& entry : server.inqueue().entries()) {
    std::printf("    app from s%u obj %u tag %s\n",
                static_cast<unsigned>(entry.origin),
                static_cast<unsigned>(entry.object),
                tag_str(entry.tag).c_str());
  }

  for (ObjectId x = 0; x < objects; ++x) {
    const DelList& dels = server.del_list(x);
    if (dels.total_entries() == 0) continue;
    std::printf("  DelL[%u] (%zu entries):\n", static_cast<unsigned>(x),
                dels.total_entries());
    for (NodeId s = 0; s < server.code().num_servers(); ++s) {
      for (const Tag& tag : dels.entries_from(s)) {
        std::printf("    from s%u tag %s\n", static_cast<unsigned>(s),
                    tag_str(tag).c_str());
      }
    }
  }

  if (!server.read_list().empty()) {
    std::printf("  pending reads (%zu):\n", server.read_list().size());
    for (const auto& read : server.read_list().all()) {
      std::printf("    opid %llu obj %u client %u%s\n",
                  static_cast<unsigned long long>(read.opid),
                  static_cast<unsigned>(read.object),
                  static_cast<unsigned>(read.client),
                  read.is_internal() ? " (internal)" : "");
    }
  }

  const ServerCounters& c = server.counters();
  std::printf("  counters: %llu writes, %llu reads (%llu history / %llu "
              "local / %llu remote), %llu re-encodes, %llu GC runs\n",
              static_cast<unsigned long long>(c.writes),
              static_cast<unsigned long long>(c.reads),
              static_cast<unsigned long long>(c.reads_served_from_history),
              static_cast<unsigned long long>(c.reads_served_local_decode),
              static_cast<unsigned long long>(c.reads_registered_remote),
              static_cast<unsigned long long>(c.reencodes),
              static_cast<unsigned long long>(c.gc_runs));

  const erasure::PlanCacheStats plans = server.code().decode_plan_cache_stats();
  std::printf("  plan cache: %llu hits / %llu misses (%.0f%% hit rate), "
              "%llu entries\n",
              static_cast<unsigned long long>(plans.hits),
              static_cast<unsigned long long>(plans.misses),
              plans.hit_rate() * 100.0,
              static_cast<unsigned long long>(plans.entries));

  print_flight_tail(server.flight_recorder().snapshot());
}

int run_demo(const Options& opt) {
  ClusterConfig config;
  config.seed = opt.seed;
  Cluster cluster(erasure::make_paper_5_3(256),
                  std::make_unique<sim::ConstantLatency>(
                      5 * sim::kMillisecond),
                  config);
  const std::size_t objects = cluster.code().num_objects();
  Rng rng(opt.seed);

  std::vector<Client*> clients;
  for (NodeId s = 0; s < cluster.num_servers(); ++s) {
    clients.push_back(&cluster.make_client(s));
  }
  for (int i = 0; i < opt.ops; ++i) {
    Client& client = *clients[rng.next_u64() % clients.size()];
    const ObjectId object =
        static_cast<ObjectId>(rng.next_u64() % objects);
    if (rng.next_u64() % 2 == 0) {
      client.write(object,
                   erasure::Value(256, static_cast<std::uint8_t>(i)));
    } else {
      client.read(object, [](const erasure::Value&, const Tag&,
                             const VectorClock&) {});
    }
    cluster.run_for(2 * sim::kMillisecond);
  }
  cluster.settle();

  const erasure::Buffer::AllocStats arenas = erasure::Buffer::alloc_stats();
  std::printf("cluster: %zu servers, %zu objects; payload arenas %llu "
              "(%llu B)\n\n",
              cluster.num_servers(), objects,
              static_cast<unsigned long long>(arenas.allocations),
              static_cast<unsigned long long>(arenas.bytes));
  for (NodeId s = 0; s < cluster.num_servers(); ++s) {
    print_server(cluster.server(s), s);
  }
  return 0;
}

int run_snapshot(const Options& opt) {
  persist::DirBackend backend(opt.snapshot_dir);
  persist::Journal journal(&backend,
                           "s" + std::to_string(opt.node));
  const persist::RecoveredState recovered = journal.load();
  if (!recovered.error.empty()) {
    std::fprintf(stderr, "snapshot decode failed: %s\n",
                 recovered.error.c_str());
    return 1;
  }
  if (!recovered.image && recovered.wal.empty()) {
    std::fprintf(stderr, "no durable state for s%u in %s\n",
                 static_cast<unsigned>(opt.node), opt.snapshot_dir.c_str());
    return 1;
  }

  std::printf("durable state of s%u in %s\n",
              static_cast<unsigned>(opt.node), opt.snapshot_dir.c_str());
  if (recovered.image) {
    const persist::ServerImage& img = *recovered.image;
    std::ostringstream vc;
    vc << img.vc;
    std::printf("  snapshot: n=%u objects=%u value_bytes=%u\n",
                img.num_servers, img.num_objects, img.value_bytes);
    std::printf("  vector clock: %s\n", vc.str().c_str());
    for (ObjectId x = 0; x < img.num_objects; ++x) {
      std::printf("  M.tag[%u] = %s  tmax = %s\n",
                  static_cast<unsigned>(x),
                  tag_str(img.m_tags[x]).c_str(),
                  tag_str(img.tmax[x]).c_str());
    }
    std::printf("  history entries: %zu\n", img.history.size());
    for (const auto& h : img.history) {
      std::printf("    obj %u tag %s (%zu B)\n",
                  static_cast<unsigned>(h.object), tag_str(h.tag).c_str(),
                  h.value.size());
    }
    std::printf("  DelL entries: %zu\n", img.dels.size());
    for (const auto& d : img.dels) {
      std::printf("    obj %u from s%u tag %s\n",
                  static_cast<unsigned>(d.object),
                  static_cast<unsigned>(d.server), tag_str(d.tag).c_str());
    }
    std::printf("  InQueue entries: %zu\n", img.inqueue.size());
    for (const auto& q : img.inqueue) {
      std::printf("    from s%u obj %u tag %s\n",
                  static_cast<unsigned>(q.origin),
                  static_cast<unsigned>(q.object), tag_str(q.tag).c_str());
    }
  } else {
    std::printf("  no snapshot (WAL only)\n");
  }
  std::printf("  WAL: %zu records%s\n", recovered.wal.size(),
              recovered.wal_torn ? " (torn tail discarded)" : "");
  std::size_t messages = 0, writes = 0;
  for (const auto& rec : recovered.wal) {
    (rec.kind == persist::WalRecord::Kind::kMessage ? messages : writes)++;
  }
  std::printf("    %zu replayed frames, %zu client writes\n", messages,
              writes);
  return 0;
}

int run_flight(const Options& opt) {
  std::ifstream in(opt.flight_file);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", opt.flight_file.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto events = obs::flight_events_from_json(buf.str());
  if (events.empty()) {
    std::fprintf(stderr, "%s: no flight events (empty or malformed)\n",
                 opt.flight_file.c_str());
    return 1;
  }
  print_flight_tail(events, events.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--demo") {
      opt.demo = true;
    } else if (arg == "--gf-tiers") {
      return run_gf_tiers();
    } else if (arg == "--snapshot") {
      opt.snapshot_dir = next();
    } else if (arg == "--flight") {
      opt.flight_file = next();
    } else if (arg == "--node") {
      opt.node = static_cast<NodeId>(std::strtoul(next().c_str(), nullptr, 10));
    } else if (arg == "--servers") {
      opt.servers = std::strtoul(next().c_str(), nullptr, 10);
    } else if (arg == "--ops") {
      opt.ops = std::atoi(next().c_str());
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(next().c_str(), nullptr, 10);
    } else {
      usage(argv[0]);
    }
  }
  if (opt.demo) return run_demo(opt);
  if (!opt.snapshot_dir.empty()) return run_snapshot(opt);
  if (!opt.flight_file.empty()) return run_flight(opt);
  usage(argv[0]);
}
