// causalec_fuzz: seed-driven chaos fuzzer for the CausalEC protocol.
//
// Each run derives a FaultPlan from a seed (workload shape, heavy-tailed
// latencies, crashes within the tolerated budget, transient partitions,
// delay bursts, GC jitter), executes it on the deterministic simulator, and
// gates the execution with the full consistency checker stack. On failure
// the plan is shrunk to a minimal reproducer and written as a replay
// bundle; `--replay <bundle>` re-executes it and verifies the run
// reproduces byte-for-byte (history hash comparison).
//
// Usage:
//   causalec_fuzz [--runs N] [--seed S] [--max-ops M] [--out-dir DIR]
//                 [--soak] [--inject-bug] [--inject-recovery-bug]
//                 [--trace FILE]
//   causalec_fuzz --replay BUNDLE.json [--trace FILE]
//
// Exit codes: 0 = clean (or replay reproduced), 1 = violation found,
// 2 = bad arguments / unreadable bundle / replay divergence.
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "chaos/bundle.h"
#include "chaos/fault_plan.h"
#include "chaos/runner.h"
#include "chaos/shrink.h"
#include "obs/trace.h"

namespace {

using namespace causalec;

struct Args {
  std::uint64_t runs = 50;
  std::uint64_t seed = 1;
  std::uint64_t max_ops = 300;
  std::string out_dir = ".";
  std::string replay;
  std::string trace;
  bool soak = false;
  bool inject_bug = false;
  bool inject_recovery_bug = false;
};

int usage() {
  std::cerr
      << "usage: causalec_fuzz [--runs N] [--seed S] [--max-ops M]\n"
         "                     [--out-dir DIR] [--soak] [--inject-bug]\n"
         "                     [--inject-recovery-bug] [--trace FILE]\n"
         "       causalec_fuzz --replay BUNDLE.json [--trace FILE]\n";
  return 2;
}

bool write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  if (!out) return false;
  out << contents;
  return static_cast<bool>(out);
}

void write_trace_for(const chaos::FaultPlan& plan, bool inject_bug,
                     bool inject_recovery_bug, const std::string& path) {
  obs::Tracer tracer;
  chaos::ChaosOptions options;
  options.inject_bug = inject_bug;
  options.inject_recovery_bug = inject_recovery_bug;
  options.tracer = &tracer;
  chaos::run_plan(plan, options);
  std::ofstream out(path);
  if (!out) {
    std::cerr << "causalec_fuzz: cannot write trace to " << path << "\n";
    return;
  }
  tracer.write_chrome_trace(out);
  std::cout << "trace written to " << path << "\n";
}

int replay(const Args& args) {
  std::ifstream in(args.replay);
  if (!in) {
    std::cerr << "causalec_fuzz: cannot open " << args.replay << "\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto bundle = chaos::bundle_from_json(buffer.str());
  if (!bundle) {
    std::cerr << "causalec_fuzz: " << args.replay
              << " is not a valid replay bundle\n";
    return 2;
  }

  chaos::ChaosOptions options;
  options.inject_bug = bundle->inject_bug;
  options.inject_recovery_bug = bundle->inject_recovery_bug;
  const chaos::RunOutcome outcome = chaos::run_plan(bundle->plan, options);
  std::cout << "replay: seed=" << bundle->plan.seed
            << " ops=" << outcome.ops_completed << "/"
            << bundle->plan.workload.ops << " hash=" << outcome.history_hash
            << " (recorded " << bundle->history_hash << ")\n";
  for (const std::string& v : outcome.violations) {
    std::cout << "  violation: " << v << "\n";
  }
  if (!args.trace.empty()) {
    write_trace_for(bundle->plan, bundle->inject_bug,
                    bundle->inject_recovery_bug, args.trace);
  }
  if (outcome.history_hash != bundle->history_hash) {
    std::cout << "replay DIVERGED from the recorded run\n";
    return 2;
  }
  std::cout << "replay reproduced the recorded run byte-for-byte\n";
  return outcome.ok ? 0 : 1;
}

int fuzz(const Args& args) {
  chaos::GenerateLimits limits;
  limits.max_ops = args.max_ops;
  chaos::ChaosOptions options;
  options.inject_bug = args.inject_bug;
  options.inject_recovery_bug = args.inject_recovery_bug;

  chaos::FaultPlan last_plan;
  std::uint64_t completed = 0;
  for (std::uint64_t i = 0; args.soak || i < args.runs; ++i) {
    const std::uint64_t seed = args.seed + i;
    const chaos::FaultPlan plan = chaos::FaultPlan::generate(seed, limits);
    last_plan = plan;
    const chaos::RunOutcome outcome = chaos::run_plan(plan, options);
    ++completed;
    if (outcome.ok) {
      if (completed % 25 == 0) {
        std::cout << completed << " runs clean (last seed " << seed << ")\n";
      }
      continue;
    }

    std::cout << "seed " << seed << " FAILED with "
              << outcome.violations.size() << " violation(s); shrinking...\n";
    std::error_code ec;
    std::filesystem::create_directories(args.out_dir, ec);
    const chaos::ShrinkResult shrunk = chaos::shrink(plan, options);
    chaos::ReplayBundle bundle;
    bundle.plan = shrunk.plan;
    bundle.inject_bug = args.inject_bug;
    bundle.inject_recovery_bug = args.inject_recovery_bug;
    bundle.history_hash = shrunk.outcome.history_hash;
    bundle.violations = shrunk.outcome.violations;
    bundle.flight = shrunk.outcome.flight;

    const std::string base =
        args.out_dir + "/causalec_repro_seed" + std::to_string(seed);
    const std::string bundle_path = base + ".json";
    if (write_file(bundle_path, chaos::bundle_to_json(bundle) + "\n")) {
      std::cout << "replay bundle written to " << bundle_path << "\n";
    } else {
      std::cerr << "causalec_fuzz: cannot write " << bundle_path << "\n";
    }
    write_trace_for(shrunk.plan, args.inject_bug, args.inject_recovery_bug,
                    args.trace.empty() ? base + ".trace.json" : args.trace);

    std::cout << "minimal reproducer: ops=" << shrunk.plan.workload.ops
              << " sessions=" << shrunk.plan.workload.sessions
              << " events=" << shrunk.plan.events.size() << " ("
              << shrunk.runs << " shrink runs)\n";
    for (const std::string& v : shrunk.outcome.violations) {
      std::cout << "  violation: " << v << "\n";
    }
    std::cout << "replay with: causalec_fuzz --replay " << bundle_path
              << "\n";
    return 1;
  }

  std::cout << "all " << completed << " runs clean (seeds " << args.seed
            << ".." << (args.seed + completed - 1) << ")\n";
  if (!args.trace.empty()) {
    write_trace_for(last_plan, args.inject_bug, args.inject_recovery_bug,
                    args.trace);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--runs") {
      const char* v = next();
      if (!v) return usage();
      args.runs = std::strtoull(v, nullptr, 10);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return usage();
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--max-ops") {
      const char* v = next();
      if (!v) return usage();
      args.max_ops = std::strtoull(v, nullptr, 10);
      if (args.max_ops == 0) return usage();
    } else if (arg == "--out-dir") {
      const char* v = next();
      if (!v) return usage();
      args.out_dir = v;
    } else if (arg == "--replay") {
      const char* v = next();
      if (!v) return usage();
      args.replay = v;
    } else if (arg == "--trace") {
      const char* v = next();
      if (!v) return usage();
      args.trace = v;
    } else if (arg == "--soak") {
      args.soak = true;
    } else if (arg == "--inject-bug") {
      args.inject_bug = true;
    } else if (arg == "--inject-recovery-bug") {
      args.inject_recovery_bug = true;
    } else {
      return usage();
    }
  }
  if (!args.replay.empty()) return replay(args);
  return fuzz(args);
}
