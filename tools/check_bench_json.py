#!/usr/bin/env python3
"""Validate BENCH_*.json artifacts against the causalec-bench-v1 schema.

Usage: check_bench_json.py [--baseline FILE [--max-regression FRAC]]
                           [--require-keys ROW[.METRIC],...]
                           FILE [FILE...]

Schema (emitted by obs::BenchReport, see src/obs/bench_report.h):
  {
    "schema": "causalec-bench-v1",
    "bench":  "<bench name>",            # non-empty string
    "config": {"key": number|string|bool, ...},
    "rows": [
      {"name": "<row label>",
       "metrics": {"key": number, ...},  # finite numbers only
       "notes":  {"key": "string", ...}} # optional
    ]
  }

With --baseline, every (row, metric) present in the baseline file must also
be present in each candidate file with
    candidate >= baseline * (1 - FRAC)
(FRAC defaults to 0.20; all pinned metrics are higher-is-better). The
baseline is itself a causalec-bench-v1 document, typically containing a
small hand-picked subset of machine-portable metrics -- see
bench/baselines/BENCH_kernels.baseline.json.

With --require-keys, each candidate file must contain every listed row
(bare "row" form) or row metric ("row.metric" form); a missing one fails
the check. This closes the hole baselines cannot: a hardware-dependent row
(e.g. the gfni kernel row) cannot be pinned in a committed baseline
without breaking machines that lack the feature, so a bench that silently
stops emitting it would otherwise pass every gate. CI on known-capable
hardware passes --require-keys for exactly the rows that hardware must
produce.

Exit code 0 when every file validates (and clears the baseline), 1
otherwise.
"""
import argparse
import json
import math
import sys


def fail(path, message):
    print(f"{path}: FAIL: {message}")
    return False


def check_baseline(path, doc, baseline, max_regression):
    """Compare a validated candidate doc against the baseline floors."""
    candidate = {
        row["name"]: row.get("metrics", {}) for row in doc.get("rows", [])
    }
    ok = True
    for row in baseline.get("rows", []):
        name = row["name"]
        for metric, base_value in row.get("metrics", {}).items():
            if name not in candidate or metric not in candidate[name]:
                ok = fail(path, f"baseline row {name!r} metric {metric!r} "
                                "missing from candidate")
                continue
            floor = base_value * (1.0 - max_regression)
            value = candidate[name][metric]
            if value < floor:
                ok = fail(path, f"{name}.{metric} regressed: {value:.3f} < "
                                f"floor {floor:.3f} (baseline "
                                f"{base_value:.3f}, tolerance "
                                f"{max_regression:.0%})")
            else:
                print(f"{path}: {name}.{metric} = {value:.3f} "
                      f">= floor {floor:.3f}")
    return ok


def check_required_keys(path, doc, required):
    """Presence check: every "row" / "row.metric" in `required` must exist."""
    rows = {
        row["name"]: row.get("metrics", {}) for row in doc.get("rows", [])
    }
    ok = True
    for spec in required:
        row, _, metric = spec.partition(".")
        if row not in rows:
            ok = fail(path, f"required row {row!r} missing")
        elif metric and metric not in rows[row]:
            ok = fail(path, f"required metric {metric!r} missing from "
                            f"row {row!r}")
        else:
            print(f"{path}: required {spec!r} present")
    return ok


def check_file(path, baseline=None, max_regression=0.20, require_keys=()):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"unreadable or invalid JSON: {e}")

    if not isinstance(doc, dict):
        return fail(path, "top level is not an object")
    if doc.get("schema") != "causalec-bench-v1":
        return fail(path, f"schema is {doc.get('schema')!r}, "
                          "expected 'causalec-bench-v1'")
    bench = doc.get("bench")
    if not isinstance(bench, str) or not bench:
        return fail(path, "'bench' must be a non-empty string")

    config = doc.get("config")
    if not isinstance(config, dict):
        return fail(path, "'config' must be an object")
    for key, value in config.items():
        if not isinstance(value, (int, float, str, bool)):
            return fail(path, f"config[{key!r}] has unsupported type "
                              f"{type(value).__name__}")
        if isinstance(value, float) and not math.isfinite(value):
            return fail(path, f"config[{key!r}] is not finite")

    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        return fail(path, "'rows' must be a non-empty array")
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            return fail(path, f"rows[{i}] is not an object")
        name = row.get("name")
        if not isinstance(name, str) or not name:
            return fail(path, f"rows[{i}].name must be a non-empty string")
        metrics = row.get("metrics")
        if not isinstance(metrics, dict):
            return fail(path, f"rows[{i}].metrics must be an object")
        for key, value in metrics.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                return fail(path, f"rows[{i}].metrics[{key!r}] must be a "
                                  "number")
            if not math.isfinite(value):
                return fail(path, f"rows[{i}].metrics[{key!r}] is not finite")
        notes = row.get("notes", {})
        if not isinstance(notes, dict):
            return fail(path, f"rows[{i}].notes must be an object")
        for key, value in notes.items():
            if not isinstance(value, str):
                return fail(path, f"rows[{i}].notes[{key!r}] must be a "
                                  "string")

    print(f"{path}: OK ({bench}, {len(rows)} rows)")
    ok = True
    if require_keys:
        ok = check_required_keys(path, doc, require_keys) and ok
    if baseline is not None:
        ok = check_baseline(path, doc, baseline, max_regression) and ok
    return ok


def main(argv):
    parser = argparse.ArgumentParser(
        description="Validate BENCH_*.json artifacts "
                    "(causalec-bench-v1 schema).")
    parser.add_argument("--baseline", metavar="FILE",
                        help="baseline JSON with metric floors to enforce")
    parser.add_argument("--max-regression", type=float, default=0.20,
                        metavar="FRAC",
                        help="allowed fractional drop below each baseline "
                             "metric (default 0.20)")
    parser.add_argument("--require-keys", metavar="ROW[.METRIC],...",
                        default="",
                        help="comma-separated rows (or row.metric pairs) "
                             "that must be present in every candidate; use "
                             "for hardware-dependent rows a committed "
                             "baseline cannot pin (e.g. the gfni rows)")
    parser.add_argument("files", nargs="+", metavar="FILE")
    args = parser.parse_args(argv[1:])

    baseline = None
    if args.baseline:
        try:
            with open(args.baseline, "r", encoding="utf-8") as f:
                baseline = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"{args.baseline}: FAIL: unreadable baseline: {e}")
            return 1
        if not isinstance(baseline, dict) or not isinstance(
                baseline.get("rows"), list):
            print(f"{args.baseline}: FAIL: baseline has no 'rows' array")
            return 1

    require_keys = tuple(
        spec.strip() for spec in args.require_keys.split(",") if spec.strip()
    )
    ok = all([check_file(path, baseline, args.max_regression, require_keys)
              for path in args.files])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
