#!/usr/bin/env python3
"""Validate BENCH_*.json artifacts against the causalec-bench-v1 schema.

Usage: check_bench_json.py FILE [FILE...]

Schema (emitted by obs::BenchReport, see src/obs/bench_report.h):
  {
    "schema": "causalec-bench-v1",
    "bench":  "<bench name>",            # non-empty string
    "config": {"key": number|string|bool, ...},
    "rows": [
      {"name": "<row label>",
       "metrics": {"key": number, ...},  # finite numbers only
       "notes":  {"key": "string", ...}} # optional
    ]
  }

Exit code 0 when every file validates, 1 otherwise.
"""
import json
import math
import sys


def fail(path, message):
    print(f"{path}: FAIL: {message}")
    return False


def check_file(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"unreadable or invalid JSON: {e}")

    if not isinstance(doc, dict):
        return fail(path, "top level is not an object")
    if doc.get("schema") != "causalec-bench-v1":
        return fail(path, f"schema is {doc.get('schema')!r}, "
                          "expected 'causalec-bench-v1'")
    bench = doc.get("bench")
    if not isinstance(bench, str) or not bench:
        return fail(path, "'bench' must be a non-empty string")

    config = doc.get("config")
    if not isinstance(config, dict):
        return fail(path, "'config' must be an object")
    for key, value in config.items():
        if not isinstance(value, (int, float, str, bool)):
            return fail(path, f"config[{key!r}] has unsupported type "
                              f"{type(value).__name__}")
        if isinstance(value, float) and not math.isfinite(value):
            return fail(path, f"config[{key!r}] is not finite")

    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        return fail(path, "'rows' must be a non-empty array")
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            return fail(path, f"rows[{i}] is not an object")
        name = row.get("name")
        if not isinstance(name, str) or not name:
            return fail(path, f"rows[{i}].name must be a non-empty string")
        metrics = row.get("metrics")
        if not isinstance(metrics, dict):
            return fail(path, f"rows[{i}].metrics must be an object")
        for key, value in metrics.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                return fail(path, f"rows[{i}].metrics[{key!r}] must be a "
                                  "number")
            if not math.isfinite(value):
                return fail(path, f"rows[{i}].metrics[{key!r}] is not finite")
        notes = row.get("notes", {})
        if not isinstance(notes, dict):
            return fail(path, f"rows[{i}].notes must be an object")
        for key, value in notes.items():
            if not isinstance(value, str):
                return fail(path, f"rows[{i}].notes[{key!r}] must be a "
                                  "string")

    print(f"{path}: OK ({bench}, {len(rows)} rows)")
    return True


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip())
        return 2
    ok = all([check_file(path) for path in argv[1:]])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
