#!/usr/bin/env bash
# Builds and runs the test suite under sanitizers.
#
#   tools/run_sanitized_tests.sh                 # asan+ubsan, then tsan
#   tools/run_sanitized_tests.sh address,undefined
#   tools/run_sanitized_tests.sh thread -R chaos # tsan, ctest filter
#   tools/run_sanitized_tests.sh address,undefined -L recovery
#       # the crash-recovery battery (persist_test's snapshot corruption
#       # sweep is written to run under asan/ubsan: every bit flip and
#       # truncation must fail cleanly, never read out of bounds)
#   tools/run_sanitized_tests.sh thread -L obs
#       # the observability battery; under tsan this exercises the
#       # flight recorder's lock-free snapshot-vs-writer protocol and the
#       # shared tracer/metrics sinks across node threads (the wall-clock
#       # obs_bench_smoke ratio gate is skipped in sanitized builds)
#   tools/run_sanitized_tests.sh thread -L repair
#       # the repair-plan battery (differential plans vs fresh Gaussian
#       # elimination, golden repair vectors, degraded reads); under tsan
#       # this exercises the shared-mutex repair-plan cache from
#       # concurrent lookup threads
#   tools/run_sanitized_tests.sh thread -L net
#       # the real-socket battery (DESIGN.md §11): frame reassembly sweep,
#       # in-process daemons over loopback TCP (every shard loop, peer
#       # link, and the automaton inbox visible to tsan), and the
#       # multi-process SIGKILL/rejoin tests (the forked servers are
#       # instrumented too; tsan just cannot see across the processes)
#   tools/run_sanitized_tests.sh thread -L frontdoor
#       # the front-door tier battery (DESIGN.md §12): hash-ring
#       # properties, the frontier-gated edge cache, cluster-config
#       # parsing, routed sessions under the consistency checkers, and
#       # the SIGKILL/router-restart chaos tests; under tsan this
#       # exercises the router's shard loops, the shared edge cache, and
#       # every RouterClient session thread (the wall-clock
#       # frontdoor_bench_smoke gate is skipped in sanitized builds)
#   tools/run_sanitized_tests.sh --net-smoke
#       # fast path: net label only, asan+ubsan then tsan
#   tools/run_sanitized_tests.sh --frontdoor-smoke
#       # fast path: frontdoor label only, asan+ubsan then tsan
#
# After an unfiltered run, each config additionally reruns the GF kernel
# differential suite once per tier available on this machine, looping
# CAUSALEC_GF_KERNEL over `causalec_inspect --gf-tiers` -- so every tier
# (including gfni where the CPU has it) gets exercised as the *active*
# dispatch target under sanitizers, not only as a comparison inside the
# differential tests.
#
# Each sanitizer config gets its own build tree (build-san-<name>), so the
# regular build/ directory is never disturbed. Extra arguments after the
# sanitizer list are forwarded to ctest.
set -euo pipefail

cd "$(dirname "$0")/.."

configs=()
if [[ $# -ge 1 && $1 == --net-smoke ]]; then
  # Fast path: just the real-socket battery under both sanitizer configs.
  shift
  set -- -L net "$@"
  configs=("address,undefined" "thread")
elif [[ $# -ge 1 && $1 == --frontdoor-smoke ]]; then
  # Fast path: just the front-door battery under both sanitizer configs.
  shift
  set -- -L frontdoor "$@"
  configs=("address,undefined" "thread")
elif [[ $# -ge 1 && $1 != -* ]]; then
  configs=("$1")
  shift
else
  configs=("address,undefined" "thread")
fi

for san in "${configs[@]}"; do
  dir="build-san-${san//,/+}"
  echo "=== ${san}: configuring ${dir} ==="
  cmake -B "$dir" -S . -DCAUSALEC_SANITIZE="$san" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  echo "=== ${san}: building ==="
  cmake --build "$dir" -j "$(nproc)"
  echo "=== ${san}: testing ==="
  # halt_on_error makes a sanitizer report fail the test that produced it.
  ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir "$dir" -j "$(nproc)" --output-on-failure "$@"

  # Kernel-tier sweep: rerun the GF kernel differential suite once per
  # tier *available on this machine* (causalec_inspect --gf-tiers asks the
  # dispatch layer, so an unavailable tier is never requested and the
  # fail-fast CAUSALEC_GF_KERNEL check stays quiet). This pins the forced-
  # dispatch path -- env parsing, set-tier plumbing, and each tier's
  # kernels as the *active* tier, not just as a comparison target inside
  # the differential tests. Skipped when the caller passed an explicit
  # ctest filter (e.g. -L net): their selection should run as given.
  if [[ $# -eq 0 ]]; then
    echo "=== ${san}: kernel-tier sweep ==="
    tiers=$("$dir/tools/causalec_inspect" --gf-tiers)
    for tier in $tiers; do
      echo "=== ${san}: CAUSALEC_GF_KERNEL=${tier} ==="
      CAUSALEC_GF_KERNEL="$tier" \
      ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
      UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
      TSAN_OPTIONS="halt_on_error=1" \
        ctest --test-dir "$dir" -j "$(nproc)" --output-on-failure \
          -R 'GfKernel'
    done
  fi
done
echo "=== all sanitizer configs passed ==="
