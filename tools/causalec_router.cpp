// causalec_router: the front-door tier as a real daemon process
// (DESIGN.md §12). Clients speak the routed client protocol to it; it
// consistent-hashes objects onto the cluster's routing groups, keeps
// pooled connections to every backend, and serves hot reads from a
// causally-safe edge cache gated by each session's frontier token.
//
// The cluster shape comes from the same shared config file every
// causalec_server was started with:
//
//   causalec_router --cluster /var/tmp/cec/cluster.conf
//     [--listen 127.0.0.1:7500] [--shards 2] [--vnodes 64]
//     [--cache-capacity 4096] [--cache-ttl-ms 2000]
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "frontdoor/router.h"
#include "net/cluster_config.h"

using namespace causalec;

namespace {

std::atomic<bool> g_shutdown{false};

void on_signal(int) { g_shutdown.store(true); }

[[noreturn]] void usage(const char* what) {
  std::fprintf(stderr, "causalec_router: %s\n", what);
  std::fprintf(stderr,
               "usage: causalec_router --cluster FILE [--listen HOST:PORT] "
               "[--shards S] [--vnodes V] [--cache-capacity N] "
               "[--cache-ttl-ms MS]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  frontdoor::RouterConfig config;
  std::string cluster_path;
  std::string listen = "127.0.0.1:0";
  long ttl_ms = 2000;

  auto next_arg = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing argument value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cluster") == 0) {
      cluster_path = next_arg(i);
    } else if (std::strcmp(argv[i], "--listen") == 0) {
      listen = next_arg(i);
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      config.shards = std::strtoul(next_arg(i), nullptr, 10);
    } else if (std::strcmp(argv[i], "--vnodes") == 0) {
      config.vnodes = std::strtoul(next_arg(i), nullptr, 10);
    } else if (std::strcmp(argv[i], "--cache-capacity") == 0) {
      config.cache_capacity = std::strtoul(next_arg(i), nullptr, 10);
    } else if (std::strcmp(argv[i], "--cache-ttl-ms") == 0) {
      ttl_ms = std::strtol(next_arg(i), nullptr, 10);
    } else {
      usage((std::string("unknown flag ") + argv[i]).c_str());
    }
  }
  if (cluster_path.empty()) usage("--cluster is required");
  std::string error;
  const auto cluster = net::load_cluster_config(cluster_path, &error);
  if (!cluster.has_value()) {
    usage(("bad --cluster file: " + error).c_str());
  }
  config.cluster = *cluster;
  config.cache_ttl = std::chrono::milliseconds(ttl_ms);
  const auto addr = net::parse_host_port(listen);
  if (!addr.has_value()) usage("bad --listen address");
  config.listen_host = addr->first;
  config.listen_port = addr->second;

  struct sigaction sa{};
  sa.sa_handler = on_signal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  frontdoor::Router router(std::move(config));
  router.start();
  std::printf("causalec_router: listening on port %u (%zu groups)\n",
              router.listen_port(), router.routing_groups().size());
  std::fflush(stdout);

  while (!g_shutdown.load()) {
    ::usleep(50'000);
  }
  const net::RouterStatsResp s = router.stats();
  std::printf("causalec_router: shutting down (reads %llu, hits %llu, "
              "writes %llu)\n",
              static_cast<unsigned long long>(s.routed_reads),
              static_cast<unsigned long long>(s.cache_hits),
              static_cast<unsigned long long>(s.routed_writes));
  router.stop();
  return 0;
}
