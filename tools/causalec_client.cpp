// causalec_client: closed-loop TCP workload driver for causalec_server.
//
// Reruns the bench_throughput --saturate workload (2n blocking clients,
// 50/50 alternating write/read of 4 KiB values) over real loopback sockets
// and emits BENCH_net.json (causalec-bench-v1) with cluster ops/s, latency
// percentiles, and per-server / per-shard ops rows from the daemons' stats
// frames. The delta between this number and the in-process --saturate run
// is the measured cost of the TCP hop (syscalls, framing, wakeups).
//
// Three ways to point it at a cluster:
//   --cluster FILE                   the shared cluster config file
//   --servers H:P,H:P,...            drive an already-running cluster
//   --spawn N K --server-bin PATH    spawn N servers (K objects) itself
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "erasure/value.h"
#include "net/cluster_config.h"
#include "net/net_client.h"
#include "net/process_cluster.h"
#include "obs/bench_report.h"
#include "obs/metrics.h"

using namespace causalec;
using namespace std::chrono_literals;

namespace {

struct Options {
  bool saturate = false;
  bool smoke = false;
  std::string cluster_path;
  std::vector<std::string> servers;
  std::size_t spawn_n = 0;
  std::size_t spawn_k = 3;
  std::string server_bin;
  std::size_t value_bytes = 4096;
  std::size_t shards = 2;
};

[[noreturn]] void usage(const char* what) {
  std::fprintf(stderr, "causalec_client: %s\n", what);
  std::fprintf(stderr,
               "usage: causalec_client --saturate [--smoke] "
               "(--cluster FILE | --servers H:P,... [--objects K] | "
               "--spawn N K --server-bin PATH) "
               "[--value-bytes B] [--shards S]\n");
  std::exit(2);
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) {
      out.push_back(csv.substr(pos));
      break;
    }
    out.push_back(csv.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

std::optional<net::StatsResp> fetch_stats(const std::string& endpoint) {
  net::NetClient client(/*client=*/0);
  if (!client.connect(endpoint, /*timeout_ms=*/1000)) return std::nullopt;
  client.set_io_timeout_ms(2000);
  return client.stats();
}

/// Cross-process convergence poll (the vc-equality + empty-transient-state
/// oracle of ProcessCluster::await_convergence, usable against any
/// endpoint list).
bool await_converged(const std::vector<std::string>& endpoints,
                     std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  int stable = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    bool converged = true;
    std::optional<VectorClock> reference;
    for (const std::string& ep : endpoints) {
      const auto s = fetch_stats(ep);
      if (!s.has_value() || s->history_entries != 0 ||
          s->inqueue_entries != 0 || s->readl_entries != 0) {
        converged = false;
        break;
      }
      if (!reference.has_value()) {
        reference = s->vc;
      } else if (!(*reference == s->vc)) {
        converged = false;
        break;
      }
    }
    if (converged && ++stable >= 2) return true;
    if (!converged) stable = 0;
    std::this_thread::sleep_for(20ms);
  }
  return false;
}

int run_saturate(const Options& opt, const std::vector<std::string>& servers) {
  const std::size_t n = servers.size();
  const std::size_t k = opt.spawn_k;
  const int clients = static_cast<int>(2 * n);
  const auto warmup = opt.smoke ? 200ms : 500ms;
  const auto measure = opt.smoke ? 1000ms : 4000ms;

  // Seed every object so reads never race an empty store.
  {
    net::NetClient seeder(/*client=*/1);
    std::size_t at = 0;
    for (ObjectId g = 0; g < static_cast<ObjectId>(k); ++g) {
      net::NetClient writer(/*client=*/1);
      if (!writer.connect(servers[g % n])) {
        std::fprintf(stderr, "cannot connect to %s\n", servers[g % n].c_str());
        return 1;
      }
      if (!writer
               .write(g + 1, g,
                      erasure::Value(opt.value_bytes,
                                     static_cast<std::uint8_t>(g + 1)))
               .has_value()) {
        std::fprintf(stderr, "seed write to %s failed\n",
                     servers[g % n].c_str());
        return 1;
      }
      (void)at;
    }
  }
  if (!await_converged(servers, 10s)) {
    std::fprintf(stderr, "cluster did not converge after seeding\n");
    return 1;
  }

  std::vector<net::StatsResp> before;
  for (const std::string& ep : servers) {
    auto s = fetch_stats(ep);
    if (!s.has_value()) {
      std::fprintf(stderr, "stats from %s failed\n", ep.c_str());
      return 1;
    }
    before.push_back(std::move(*s));
  }

  std::atomic<bool> counting{false};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> writes{0};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> failures{0};
  obs::Histogram write_lat_ns;
  obs::Histogram read_lat_ns;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      net::NetClient client(100 + static_cast<ClientId>(t));
      if (!client.connect(servers[static_cast<std::size_t>(t) % n])) {
        failures.fetch_add(1);
        return;
      }
      const auto object = static_cast<ObjectId>(t % static_cast<int>(k));
      const erasure::Value payload(opt.value_bytes,
                                   static_cast<std::uint8_t>(t + 1));
      OpId opid = 1;
      bool do_write = (t % 2) == 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto t0 = std::chrono::steady_clock::now();
        bool ok;
        if (do_write) {
          ok = client.write(opid++, object, payload).has_value();
        } else {
          ok = client.read(opid++, object).has_value();
        }
        const auto dt = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
        if (!ok) {
          failures.fetch_add(1);
          return;  // a broken connection ends this client
        }
        if (counting.load(std::memory_order_relaxed)) {
          if (do_write) {
            writes.fetch_add(1, std::memory_order_relaxed);
            write_lat_ns.observe(dt);
          } else {
            reads.fetch_add(1, std::memory_order_relaxed);
            read_lat_ns.observe(dt);
          }
        }
        do_write = !do_write;
      }
    });
  }
  std::this_thread::sleep_for(warmup);
  const auto start = std::chrono::steady_clock::now();
  counting.store(true);
  std::this_thread::sleep_for(measure);
  counting.store(false);
  const auto end = std::chrono::steady_clock::now();
  stop.store(true);
  for (auto& th : threads) th.join();

  std::vector<net::StatsResp> after;
  std::uint64_t error_events = 0;
  for (const std::string& ep : servers) {
    auto s = fetch_stats(ep);
    if (!s.has_value()) {
      std::fprintf(stderr, "stats from %s failed\n", ep.c_str());
      return 1;
    }
    error_events += s->error_events;
    after.push_back(std::move(*s));
  }

  const double seconds = std::chrono::duration<double>(end - start).count();
  const double writes_per_s = static_cast<double>(writes.load()) / seconds;
  const double reads_per_s = static_cast<double>(reads.load()) / seconds;
  const double ops_per_s = writes_per_s + reads_per_s;
  const auto wr = write_lat_ns.snapshot();
  const auto rd = read_lat_ns.snapshot();

  std::printf("net --saturate: %zu servers, %zu-byte values, %d closed-loop "
              "TCP clients (50/50 write/read)\n\n",
              n, opt.value_bytes, clients);
  std::printf("%-12s %12s %12s %12s %12s %12s\n", "row", "ops/s", "writes/s",
              "reads/s", "w p99 us", "r p99 us");
  std::printf("%-12s %12.1f %12.1f %12.1f %12.1f %12.1f\n", "saturate",
              ops_per_s, writes_per_s, reads_per_s,
              wr.percentile(0.99) / 1e3, rd.percentile(0.99) / 1e3);

  obs::BenchReport report("net");
  report.set_config("mode", "saturate");
  report.set_config("smoke", opt.smoke);
  report.set_config("servers", n);
  report.set_config("objects", k);
  report.set_config("value_bytes", opt.value_bytes);
  report.set_config("clients", clients);
  report.set_config("measured_s", seconds);
  report.add_row("saturate")
      .metric("ops_per_s", ops_per_s)
      .metric("writes_per_s", writes_per_s)
      .metric("reads_per_s", reads_per_s)
      .metric("write_p50_us", wr.percentile(0.5) / 1e3)
      .metric("write_p99_us", wr.percentile(0.99) / 1e3)
      .metric("read_p50_us", rd.percentile(0.5) / 1e3)
      .metric("read_p99_us", rd.percentile(0.99) / 1e3)
      .metric("failures", static_cast<double>(failures.load()))
      .metric("error_events", static_cast<double>(error_events));
  // Per-server rows with per-shard ops/s: the deltas of each daemon's
  // shard counters across the measurement window show whether the kernel's
  // SO_REUSEPORT accept balancing actually spread the load.
  for (std::size_t s = 0; s < n; ++s) {
    auto& row = report.add_row("s" + std::to_string(s));
    const auto& b = before[s].shard_ops;
    const auto& a = after[s].shard_ops;
    double total = 0;
    for (std::size_t sh = 0; sh < a.size(); ++sh) {
      const std::uint64_t delta = a[sh] - (sh < b.size() ? b[sh] : 0);
      const double per_s = static_cast<double>(delta) / seconds;
      row.metric("shard" + std::to_string(sh) + "_ops_per_s", per_s);
      total += per_s;
    }
    row.metric("ops_per_s", total);
  }
  const std::string path = report.write_default();
  if (!path.empty()) std::printf("\nwrote %s\n", path.c_str());

  if (failures.load() != 0) {
    std::fprintf(stderr, "%llu client(s) failed mid-run\n",
                 static_cast<unsigned long long>(failures.load()));
    return 1;
  }
  if (error_events != 0) {
    std::fprintf(stderr, "servers reported %llu error events\n",
                 static_cast<unsigned long long>(error_events));
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  auto next_arg = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing argument value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--saturate") == 0) {
      opt.saturate = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      opt.smoke = true;
    } else if (std::strcmp(argv[i], "--cluster") == 0) {
      opt.cluster_path = next_arg(i);
    } else if (std::strcmp(argv[i], "--servers") == 0) {
      opt.servers = split_csv(next_arg(i));
    } else if (std::strcmp(argv[i], "--spawn") == 0) {
      opt.spawn_n = std::strtoul(next_arg(i), nullptr, 10);
      opt.spawn_k = std::strtoul(next_arg(i), nullptr, 10);
    } else if (std::strcmp(argv[i], "--server-bin") == 0) {
      opt.server_bin = next_arg(i);
    } else if (std::strcmp(argv[i], "--objects") == 0) {
      // The cluster's object count (--servers mode; --spawn sets it via K).
      opt.spawn_k = std::strtoul(next_arg(i), nullptr, 10);
    } else if (std::strcmp(argv[i], "--value-bytes") == 0) {
      opt.value_bytes = std::strtoul(next_arg(i), nullptr, 10);
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      opt.shards = std::strtoul(next_arg(i), nullptr, 10);
    } else {
      usage((std::string("unknown flag ") + argv[i]).c_str());
    }
  }
  if (!opt.saturate) usage("--saturate is the only mode (so far)");
  if (!opt.cluster_path.empty()) {
    // The shared deployment descriptor carries endpoints and shape; the
    // workload's value size stays a client knob (servers only check the
    // coded value size, which the file also fixes).
    std::string error;
    const auto cluster = net::load_cluster_config(opt.cluster_path, &error);
    if (!cluster.has_value()) {
      usage(("bad --cluster file: " + error).c_str());
    }
    opt.servers = cluster->endpoints;
    opt.spawn_k = cluster->num_objects;
    opt.value_bytes = cluster->value_bytes;
  }
  if (opt.servers.empty() && opt.spawn_n == 0) {
    usage("need --cluster, --servers, or --spawn");
  }

  if (!opt.servers.empty()) {
    return run_saturate(opt, opt.servers);
  }

  // Self-contained: spawn the cluster, drive it, tear it down.
  if (opt.server_bin.empty()) usage("--spawn needs --server-bin");
  net::ProcessClusterConfig cluster_config;
  cluster_config.server_bin = opt.server_bin;
  cluster_config.num_servers = opt.spawn_n;
  cluster_config.num_objects = opt.spawn_k;
  cluster_config.value_bytes = opt.value_bytes;
  cluster_config.shards = opt.shards;
  // No journal for the bench: measure the data path, not fsync traffic.
  cluster_config.persistence = false;
  net::ProcessCluster cluster(cluster_config);
  if (!cluster.start() || !cluster.await_ready(10s)) {
    std::fprintf(stderr, "causalec_client: cluster failed to start\n");
    return 1;
  }
  return run_saturate(opt, cluster.endpoints());
}
